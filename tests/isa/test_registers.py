import pytest

from repro.isa.registers import (
    NUM_REGS,
    RAX,
    RCX,
    RDI,
    RSI,
    SP,
    is_register_name,
    register_name,
    register_number,
)


def test_plain_register_names_round_trip():
    for number in range(NUM_REGS):
        assert register_number(f"r{number}") == number


def test_aliases_map_to_documented_numbers():
    assert register_number("rax") == RAX == 0
    assert register_number("rcx") == RCX == 1
    assert register_number("rsi") == RSI == 2
    assert register_number("rdi") == RDI == 3
    assert register_number("sp") == SP == 15


def test_register_name_prefers_alias():
    assert register_name(0) == "rax"
    assert register_name(15) == "sp"
    assert register_name(7) == "r7"


def test_case_insensitive_parsing():
    assert register_number("RAX") == 0
    assert register_number("R9") == 9


@pytest.mark.parametrize("bad", ["r16", "r-1", "rbx", "x0", "", "r"])
def test_invalid_names_rejected(bad):
    with pytest.raises(ValueError):
        register_number(bad)
    assert not is_register_name(bad)


def test_register_name_out_of_range():
    with pytest.raises(ValueError):
        register_name(16)
    with pytest.raises(ValueError):
        register_name(-1)


def test_is_register_name_positive():
    assert is_register_name("sp")
    assert is_register_name("r0")
