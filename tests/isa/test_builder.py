from repro.isa.builder import KernelBuilder
from repro.machine.core import OUTCOME_SYSCALL
from tests.conftest import Fragment


def _run(builder: KernelBuilder) -> Fragment:
    fragment = Fragment(builder.build("builder-test"))
    assert fragment.run() == OUTCOME_SYSCALL
    return fragment


def test_for_range_counts_iterations():
    b = KernelBuilder()
    b.word("acc", 0)
    b.label("main")
    b.ins("mov", "r5", 0)
    with b.for_range("r6", 0, 10):
        b.ins("add", "r5", "r5", 1)
    b.ins("store", "[acc]", "r5")
    b.ins("syscall")
    assert _run(b).word("acc") == 10


def test_for_range_with_step():
    b = KernelBuilder()
    b.word("acc", 0)
    b.label("main")
    b.ins("mov", "r5", 0)
    with b.for_range("r6", 0, 10, step=3):
        b.ins("add", "r5", "r5", "r6")
    b.ins("store", "[acc]", "r5")
    b.ins("syscall")
    assert _run(b).word("acc") == 0 + 3 + 6 + 9


def test_while_nonzero():
    b = KernelBuilder()
    b.word("acc", 0)
    b.label("main")
    b.ins("mov", "r6", 5)
    b.ins("mov", "r5", 0)
    with b.while_nonzero("r6"):
        b.ins("add", "r5", "r5", 1)
        b.ins("sub", "r6", "r6", 1)
    b.ins("store", "[acc]", "r5")
    b.ins("syscall")
    assert _run(b).word("acc") == 5


def test_if_equal_taken_and_not_taken():
    b = KernelBuilder()
    b.word("a", 0)
    b.word("b", 0)
    b.label("main")
    b.ins("mov", "r6", 7)
    with b.if_equal("r6", 7):
        b.ins("store", "[a]", 1)
    with b.if_equal("r6", 8):
        b.ins("store", "[b]", 1)
    b.ins("syscall")
    fragment = _run(b)
    assert fragment.word("a") == 1
    assert fragment.word("b") == 0


def test_if_not_equal():
    b = KernelBuilder()
    b.word("a", 0)
    b.label("main")
    b.ins("mov", "r6", 7)
    with b.if_not_equal("r6", 8):
        b.ins("store", "[a]", 1)
    b.ins("syscall")
    assert _run(b).word("a") == 1


def test_spin_lock_uncontended_acquires_and_releases():
    b = KernelBuilder()
    b.word("lock", 0)
    b.word("acc", 0)
    b.label("main")
    b.spin_lock("lock", scratch="r7")
    b.ins("load", "r8", "[lock]")
    b.ins("store", "[acc]", "r8")      # observe held state
    b.spin_unlock("lock")
    b.ins("syscall")
    fragment = _run(b)
    assert fragment.word("acc") == 1   # lock was held inside
    assert fragment.word("lock") == 0  # and released after


def test_barrier_single_thread_passes_and_bumps_generation():
    b = KernelBuilder()
    b.word("bar", 0, 0)
    b.label("main")
    b.barrier("bar", 1)
    b.barrier("bar", 1)
    b.ins("syscall")
    fragment = _run(b)
    assert fragment.word("bar", 0) == 0  # counter reset
    assert fragment.word("bar", 1) == 2  # two generations passed


def test_fresh_labels_unique():
    b = KernelBuilder()
    assert b.fresh("x") != b.fresh("x")


def test_words_array_layout():
    b = KernelBuilder()
    b.words("arr", list(range(40)))
    b.label("main")
    b.ins("syscall")
    fragment = _run(b)
    assert fragment.word("arr", 0) == 0
    assert fragment.word("arr", 39) == 39


def test_at_helper_renders_memory_operand():
    assert KernelBuilder.at("sym") == "[sym]"
    assert KernelBuilder.at("sym", "r3") == "[sym + r3*4]"
    assert KernelBuilder.at("sym", "r3", scale=1, disp=8) == "[sym + r3 + 8]"


def test_asciz_escaping_round_trip():
    b = KernelBuilder()
    b.asciz("s", 'he said "hi"\n')
    b.label("main")
    b.ins("syscall")
    fragment = _run(b)
    addr = fragment.program.symbol("s")
    raw = fragment.memory.read(addr, 14)
    assert raw == b'he said "hi"\n\x00'


def test_source_has_sections():
    b = KernelBuilder()
    b.word("v", 1)
    b.label("main")
    b.ins("nop")
    text = b.source()
    assert text.startswith(".data")
    assert ".text" in text
