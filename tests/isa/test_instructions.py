import pytest

from repro.isa.instructions import (
    ALIASES,
    Instr,
    MNEMONICS,
    is_atomic,
    is_rep,
    mem_ops_per_unit,
)
from repro.isa.operands import Imm, Mem, Reg


def test_every_spec_arity_matches_signature():
    for name, spec in MNEMONICS.items():
        assert spec.mnemonic == name
        assert spec.arity == len(spec.signature)


def test_atomics_are_fences():
    for name in ("xadd", "xchg", "cmpxchg"):
        spec = MNEMONICS[name]
        assert spec.is_atomic
        assert spec.is_fence
        assert spec.reads_mem and spec.writes_mem


def test_rep_instructions_flagged():
    assert MNEMONICS["rep_movs"].is_rep
    assert MNEMONICS["rep_stos"].is_rep
    assert not MNEMONICS["mov"].is_rep


def test_nondet_instructions_flagged():
    for name in ("rdtsc", "rdrand", "cpuid"):
        assert MNEMONICS[name].is_nondet


def test_branch_flags():
    assert MNEMONICS["jmp"].is_branch and not MNEMONICS["jmp"].is_cond_branch
    assert MNEMONICS["je"].is_cond_branch
    assert MNEMONICS["call"].is_branch
    assert MNEMONICS["ret"].is_branch


def test_instr_validates_arity():
    with pytest.raises(ValueError):
        Instr("mov", (Reg(1),))
    with pytest.raises(ValueError):
        Instr("nop", (Reg(1),))


def test_instr_validates_operand_kinds():
    with pytest.raises(ValueError):
        Instr("load", (Imm(1), Mem(base=2)))  # dest must be a register
    with pytest.raises(ValueError):
        Instr("load", (Reg(1), Reg(2)))  # source must be memory
    with pytest.raises(ValueError):
        Instr("jmp", (Reg(1),))  # target must be resolved immediate


def test_instr_rejects_unknown_mnemonic():
    with pytest.raises(ValueError):
        Instr("bogus", ())


def test_instr_str_round():
    instr = Instr("add", (Reg(1), Reg(2), Imm(3)))
    assert str(instr) == "add rcx, rsi, 3"


def test_mem_ops_per_unit():
    assert mem_ops_per_unit(Instr("rep_movs", ())) == 2
    assert mem_ops_per_unit(Instr("rep_stos", ())) == 1
    assert mem_ops_per_unit(Instr("load", (Reg(1), Mem(base=2)))) == 1
    assert mem_ops_per_unit(Instr("xadd", (Mem(base=2), Reg(1)))) == 2
    assert mem_ops_per_unit(Instr("nop", ())) == 0


def test_helpers_match_spec():
    assert is_atomic(Instr("xchg", (Mem(base=1), Reg(2))))
    assert not is_atomic(Instr("mov", (Reg(1), Imm(0))))
    assert is_rep(Instr("rep_stos", ()))


def test_aliases_resolve_to_known_mnemonics():
    for alias, target in ALIASES.items():
        assert target in MNEMONICS
        assert alias not in MNEMONICS


def test_syscall_is_fence():
    assert MNEMONICS["syscall"].is_syscall
    assert MNEMONICS["syscall"].is_fence
