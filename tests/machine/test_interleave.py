import pytest

from repro.errors import ConfigError
from repro.machine.interleave import (
    BurstyInterleaver,
    RandomInterleaver,
    RoundRobinInterleaver,
    make_interleaver,
)


def test_random_deterministic_given_seed():
    a = RandomInterleaver(7)
    b = RandomInterleaver(7)
    candidates = [0, 1, 2, 3]
    assert [a.choose(candidates) for _ in range(50)] == \
           [b.choose(candidates) for _ in range(50)]


def test_random_differs_across_seeds():
    a = [RandomInterleaver(1).choose([0, 1, 2, 3]) for _ in range(20)]
    b = [RandomInterleaver(2).choose([0, 1, 2, 3]) for _ in range(20)]
    # Not a strict guarantee, but 20 identical draws would be 1 in 4^20.
    assert a != b


def test_random_single_candidate_fast_path():
    assert RandomInterleaver(0).choose([3]) == 3


def test_round_robin_rotates():
    rr = RoundRobinInterleaver()
    candidates = [0, 1, 2]
    assert [rr.choose(candidates) for _ in range(6)] == [0, 1, 2, 0, 1, 2]


def test_round_robin_skips_missing():
    rr = RoundRobinInterleaver()
    assert rr.choose([0, 2]) == 0
    assert rr.choose([0, 2]) == 2
    assert rr.choose([1, 2]) == 1  # nothing past 2, wraps to the front
    assert rr.choose([0, 2]) == 2


def test_bursty_sticks_then_switches():
    bursty = BurstyInterleaver(0, min_burst=3, max_burst=3)
    picks = [bursty.choose([0, 1]) for _ in range(6)]
    assert picks[0] == picks[1] == picks[2]
    assert picks[3] == picks[4] == picks[5]


def test_bursty_abandons_vanished_core():
    bursty = BurstyInterleaver(0, min_burst=100, max_burst=100)
    first = bursty.choose([0, 1])
    other = 1 - first
    assert bursty.choose([other]) == other


def test_bursty_validates_bounds():
    with pytest.raises(ConfigError):
        BurstyInterleaver(0, min_burst=0)
    with pytest.raises(ConfigError):
        BurstyInterleaver(0, min_burst=5, max_burst=2)


def test_factory_names():
    assert isinstance(make_interleaver("random", 1), RandomInterleaver)
    assert isinstance(make_interleaver("rr"), RoundRobinInterleaver)
    assert isinstance(make_interleaver("bursty", 2), BurstyInterleaver)
    with pytest.raises(ConfigError):
        make_interleaver("chaotic")
