from repro.config import CacheConfig
from repro.machine.cache import (
    EXCLUSIVE,
    HIT,
    MESICache,
    MISS,
    MODIFIED,
    SHARED,
    UPGRADE,
)


def make_cache(sets=4, ways=2):
    return MESICache(CacheConfig(line_bytes=64, sets=sets, ways=ways))


def test_read_miss_then_hit():
    cache = make_cache()
    assert cache.classify_read(0) == MISS
    cache.fill(0, EXCLUSIVE)
    assert cache.classify_read(0) == HIT
    assert cache.stats.read_misses == 1
    assert cache.stats.read_hits == 1


def test_write_states():
    cache = make_cache()
    assert cache.classify_write(0) == MISS
    cache.fill(0, MODIFIED)
    assert cache.classify_write(0) == HIT


def test_write_to_shared_is_upgrade():
    cache = make_cache()
    cache.fill(0, SHARED)
    assert cache.classify_write(0) == UPGRADE
    assert cache.stats.upgrades == 1


def test_write_hit_on_exclusive_promotes_to_modified():
    cache = make_cache()
    cache.fill(0, EXCLUSIVE)
    assert cache.classify_write(0) == HIT
    assert cache.state(0) == MODIFIED


def test_lru_eviction_within_set():
    cache = make_cache(sets=1, ways=2)
    cache.fill(0, EXCLUSIVE)
    cache.fill(64, EXCLUSIVE)
    cache.classify_read(0)          # touch 0, making 64 the LRU victim
    cache.fill(128, EXCLUSIVE)
    assert cache.state(64) is None
    assert cache.state(0) == EXCLUSIVE
    assert cache.stats.evictions == 1


def test_eviction_of_modified_reports_writeback():
    cache = make_cache(sets=1, ways=1)
    cache.fill(0, MODIFIED)
    assert cache.fill(64, EXCLUSIVE) is True
    assert cache.stats.writebacks == 1


def test_snoop_remote_read_downgrades():
    cache = make_cache()
    cache.fill(0, MODIFIED)
    assert cache.snoop_remote_read(0) is True
    assert cache.state(0) == SHARED
    assert cache.stats.writebacks == 1


def test_snoop_remote_read_on_shared_keeps_shared():
    cache = make_cache()
    cache.fill(0, SHARED)
    assert cache.snoop_remote_read(0) is True
    assert cache.state(0) == SHARED


def test_snoop_remote_read_absent():
    cache = make_cache()
    assert cache.snoop_remote_read(0) is False


def test_snoop_remote_write_invalidates():
    cache = make_cache()
    cache.fill(0, SHARED)
    assert cache.snoop_remote_write(0) is False  # no modified flush
    assert cache.state(0) is None
    assert cache.stats.invalidations_received == 1


def test_snoop_remote_write_flushes_modified():
    cache = make_cache()
    cache.fill(0, MODIFIED)
    assert cache.snoop_remote_write(0) is True
    assert cache.state(0) is None


def test_lines_map_to_distinct_sets():
    cache = make_cache(sets=4, ways=1)
    for index in range(4):
        cache.fill(index * 64, EXCLUSIVE)
    assert cache.stats.evictions == 0
    assert len(cache.cached_lines()) == 4


def test_flush_all():
    cache = make_cache()
    cache.fill(0, MODIFIED)
    cache.flush_all()
    assert cache.cached_lines() == {}
