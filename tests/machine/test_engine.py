"""Instruction-semantics tests against a sequentially consistent port."""

import pytest

from repro.errors import MachineFault
from repro.machine.core import OUTCOME_NONDET, OUTCOME_SYSCALL
from tests.conftest import Fragment, run_fragment


# -- data movement -----------------------------------------------------------

def test_mov_imm_and_reg():
    f = run_fragment("    mov r1, 7\n    mov r2, r1\n")
    assert f.reg(2) == 7


def test_mov_negative_masks():
    f = run_fragment("    mov r1, -1\n")
    assert f.reg(1) == 0xFFFFFFFF


def test_load_store_word():
    f = run_fragment("    mov r1, 123\n    store [v], r1\n    load r2, [v]\n",
                     data="v: .word 0\n")
    assert f.reg(2) == 123
    assert f.word("v") == 123


def test_loadb_zero_extends():
    f = run_fragment("    loadb r1, [v]\n", data="v: .word 0xFFFFFF80\n")
    assert f.reg(1) == 0x80


def test_storeb_touches_one_byte():
    f = run_fragment("    mov r1, 0x1FF\n    storeb [v + 1], r1\n",
                     data="v: .word 0\n")
    assert f.word("v") == 0xFF00


def test_lea_computes_address_without_access():
    f = run_fragment("    mov r2, 3\n    lea r1, [v + r2*4 + 8]\n",
                     data="v: .word 0\n")
    assert f.reg(1) == f.program.symbol("v") + 20


def test_push_pop():
    f = run_fragment("    mov r1, 42\n    push r1\n    mov r1, 0\n    pop r2\n")
    assert f.reg(2) == 42


def test_push_decrements_sp_by_word():
    f = run_fragment("    mov r5, sp\n    push r1\n    sub r6, r5, sp\n")
    assert f.reg(6) == 4


# -- ALU ----------------------------------------------------------------------

@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 2, 3, 5),
    ("add", 0xFFFFFFFF, 1, 0),
    ("sub", 5, 7, 0xFFFFFFFE),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 1, 4, 16),
    ("shl", 1, 33, 2),            # shift count masked to 5 bits
    ("shr", 0x80000000, 31, 1),
    ("sar", 0x80000000, 31, 0xFFFFFFFF),
    ("mul", 7, 6, 42),
    ("mul", 0x10000, 0x10000, 0),  # low 32 bits only
    ("div", 43, 6, 7),
    ("mod", 43, 6, 1),
])
def test_alu_ops(op, a, b, expected):
    f = run_fragment(f"    mov r1, {a}\n    mov r2, {b}\n    {op} r3, r1, r2\n")
    assert f.reg(3) == expected


def test_alu_immediate_second_source():
    f = run_fragment("    mov r1, 10\n    add r3, r1, 5\n")
    assert f.reg(3) == 15


def test_div_by_zero_faults():
    fragment = Fragment(".text\nmain:\n    mov r1, 1\n    div r2, r1, r3\n")
    with pytest.raises(MachineFault):
        fragment.run()


def test_neg_and_not():
    f = run_fragment("    mov r1, 5\n    neg r2, r1\n    not r3, r1\n")
    assert f.reg(2) == 0xFFFFFFFB
    assert f.reg(3) == 0xFFFFFFFA


# -- flags and branches ------------------------------------------------------------

def _branch_taken(cond: str, a: int, b: int) -> bool:
    f = run_fragment(f"""
    mov r1, {a}
    mov r2, {b}
    mov r3, 0
    cmp r1, r2
    {cond} taken
    jmp out
taken:
    mov r3, 1
out:
""")
    return f.reg(3) == 1


def test_je_jne():
    assert _branch_taken("je", 5, 5)
    assert not _branch_taken("je", 5, 6)
    assert _branch_taken("jne", 5, 6)


def test_signed_comparisons():
    # -1 < 1 signed
    assert _branch_taken("jl", 0xFFFFFFFF, 1)
    assert _branch_taken("jg", 1, 0xFFFFFFFF)
    assert _branch_taken("jle", 5, 5)
    assert _branch_taken("jge", 5, 5)
    assert not _branch_taken("jl", 5, 5)


def test_unsigned_comparisons():
    # 0xFFFFFFFF > 1 unsigned
    assert _branch_taken("ja", 0xFFFFFFFF, 1)
    assert _branch_taken("jb", 1, 0xFFFFFFFF)
    assert _branch_taken("jae", 5, 5)
    assert _branch_taken("jbe", 5, 5)


def test_sign_flags():
    assert _branch_taken("js", 1, 2)      # 1-2 negative
    assert _branch_taken("jns", 2, 1)


def test_signed_overflow_handled_in_jl():
    # INT_MIN < 1: sub overflows, jl must still be taken
    assert _branch_taken("jl", 0x80000000, 1)


def test_test_sets_zero_flag():
    f = run_fragment("""
    mov r1, 0
    mov r3, 0
    test r1, r1
    jne out
    mov r3, 1
out:
""")
    assert f.reg(3) == 1


def test_call_ret():
    f = run_fragment("""
    mov r3, 0
    call fn
    add r3, r3, 100
    jmp out
fn:
    mov r3, 5
    ret
out:
""")
    assert f.reg(3) == 105


def test_nested_calls():
    f = run_fragment("""
    call a
    jmp out
a:
    call bfn
    add r3, r3, 1
    ret
bfn:
    mov r3, 10
    ret
out:
""")
    assert f.reg(3) == 11


# -- atomics ---------------------------------------------------------------------

def test_xadd_returns_old_value():
    f = run_fragment("    mov r1, 5\n    xadd [v], r1\n",
                     data="v: .word 10\n")
    assert f.reg(1) == 10
    assert f.word("v") == 15


def test_xchg_swaps():
    f = run_fragment("    mov r1, 5\n    xchg [v], r1\n", data="v: .word 9\n")
    assert f.reg(1) == 9
    assert f.word("v") == 5


def test_cmpxchg_success_sets_zf():
    f = run_fragment("""
    mov rax, 7
    mov r1, 99
    cmpxchg [v], r1
    mov r3, 0
    jne out
    mov r3, 1
out:
""", data="v: .word 7\n")
    assert f.reg(3) == 1
    assert f.word("v") == 99


def test_cmpxchg_failure_loads_rax():
    f = run_fragment("""
    mov rax, 8
    mov r1, 99
    cmpxchg [v], r1
""", data="v: .word 7\n")
    assert f.reg(0) == 7      # rax observed current value
    assert f.word("v") == 7   # no store happened


def test_atomics_fence():
    f = run_fragment("    mov r1, 1\n    xadd [v], r1\n", data="v: .word 0\n")
    assert f.port.fences == 1


def test_mfence_calls_port_fence():
    f = run_fragment("    mfence\n")
    assert f.port.fences == 1


def test_misaligned_atomic_faults():
    fragment = Fragment(
        ".data\nv: .word 0, 0\n.text\nmain:\n    mov r2, v\n"
        "    add r2, r2, 2\n    mov r1, 1\n    xadd [r2], r1\n")
    with pytest.raises(MachineFault):
        fragment.run()


# -- string instructions -----------------------------------------------------------

def test_rep_movs_copies_words():
    f = run_fragment("""
    mov rcx, 4
    mov rsi, src
    mov rdi, dst
    rep_movs
""", data="src: .word 1, 2, 3, 4\ndst: .space 16\n")
    assert [f.word("dst", i) for i in range(4)] == [1, 2, 3, 4]
    assert f.reg(1) == 0  # rcx exhausted


def test_rep_movs_zero_count_is_nop():
    f = run_fragment("""
    mov rcx, 0
    mov rsi, src
    mov rdi, dst
    rep_movs
""", data="src: .word 9\ndst: .word 0\n")
    assert f.word("dst") == 0


def test_rep_movs_counts_one_retirement():
    f = run_fragment("""
    mov rcx, 8
    mov rsi, src
    mov rdi, dst
    rep_movs
""", data="src: .space 32\ndst: .space 32\n")
    # mov*3 + rep_movs + the halting syscall's trap does not retire
    assert f.engine.retired == 4


def test_rep_movs_progress_in_registers():
    """One unit executes one iteration; architectural state carries progress."""
    fragment = Fragment(
        ".data\nsrc: .word 1, 2\ndst: .space 8\n.text\nmain:\n"
        "    mov rcx, 2\n    mov rsi, src\n    mov rdi, dst\n    rep_movs\n"
        "    syscall\n")
    for _ in range(3):  # 3 movs
        fragment.engine.step(fragment.port)
    pc_before = fragment.engine.pc
    fragment.engine.step(fragment.port)  # first iteration
    assert fragment.engine.regs[1] == 1  # rcx decremented
    assert fragment.engine.pc == pc_before  # instruction still in flight
    assert fragment.engine.cur_memops == 2
    fragment.engine.step(fragment.port)  # second iteration completes it
    assert fragment.engine.pc == pc_before + 1
    assert fragment.engine.cur_memops == 0


def test_rep_stos_fills():
    f = run_fragment("""
    mov rax, 7
    mov rcx, 3
    mov rdi, dst
    rep_stos
""", data="dst: .space 12\n")
    assert [f.word("dst", i) for i in range(3)] == [7, 7, 7]


# -- traps ----------------------------------------------------------------------------

def test_syscall_outcome_leaves_state_untouched():
    fragment = Fragment(".text\nmain:\n    mov r1, 3\n    syscall\n")
    fragment.engine.step(fragment.port)
    pc = fragment.engine.pc
    retired = fragment.engine.retired
    assert fragment.engine.step(fragment.port) == OUTCOME_SYSCALL
    assert fragment.engine.pc == pc
    assert fragment.engine.retired == retired


def test_nondet_outcome_and_complete_trap():
    fragment = Fragment(".text\nmain:\n    rdtsc r5\n    syscall\n")
    assert fragment.engine.step(fragment.port) == OUTCOME_NONDET
    instr = fragment.engine.current_instr()
    fragment.engine.complete_trap(instr.ops[0], 0xDEAD)
    assert fragment.engine.regs[5] == 0xDEAD
    assert fragment.engine.retired == 1


def test_pc_off_end_faults():
    fragment = Fragment(".text\nmain:\n    nop\n")
    fragment.engine.step(fragment.port)
    with pytest.raises(MachineFault):
        fragment.engine.step(fragment.port)


def test_misaligned_load_faults():
    fragment = Fragment(".text\nmain:\n    mov r1, 2\n    load r2, [r1]\n")
    with pytest.raises(MachineFault):
        fragment.run()


def test_context_save_restore_round_trip():
    fragment = Fragment(".text\nmain:\n    mov r1, 5\n    cmp r1, 5\n    syscall\n")
    fragment.run()
    ctx = fragment.engine.save_context()
    fragment.engine.regs[1] = 0
    fragment.engine.zf = 0
    fragment.engine.pc = 0
    fragment.engine.restore_context(ctx)
    assert fragment.engine.regs[1] == 5
    assert fragment.engine.zf == 1
    assert fragment.engine.pc == 2


def test_load_hash_tracks_loaded_values():
    f1 = run_fragment("    load r1, [v]\n", data="v: .word 5\n")
    f2 = run_fragment("    load r1, [v]\n", data="v: .word 6\n")
    assert f1.engine.load_hash != f2.engine.load_hash
    assert f1.engine.loads == 1


def test_store_counter():
    f = run_fragment("    store [v], 3\n    push r1\n", data="v: .word 0\n")
    assert f.engine.stores == 2
