"""Machine-level behaviour: TSO visibility, drains, coherent copies."""

import pytest

from repro.config import MachineConfig, StoreBufferConfig
from repro.errors import MachineFault
from repro.isa.assembler import assemble
from repro.machine.core import OUTCOME_SYSCALL
from repro.machine.machine import Machine


def make_machine(source: str, **machine_kwargs) -> Machine:
    machine = Machine(MachineConfig(num_cores=2, memory_bytes=1 << 16,
                                    **machine_kwargs))
    machine.load_program(assemble(source))
    return machine


STORE_PROGRAM = """
.data
v: .word 0
.text
main:
    mov r1, 7
    store [v], r1
    syscall
"""


def test_store_buffered_not_immediately_visible():
    machine = make_machine(STORE_PROGRAM,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=1000))
    machine.step_core(0)
    machine.step_core(0)
    addr = machine.program.symbol("v")
    assert machine.memory.read_word(addr) == 0          # still in SB
    assert len(machine.cores[0].store_buffer) == 1
    machine.cores[0].drain_all()
    assert machine.memory.read_word(addr) == 7


def test_background_drain_makes_store_visible():
    machine = make_machine(STORE_PROGRAM,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=2))
    machine.step_core(0)
    machine.step_core(0)  # store buffered; global_step hits drain period
    addr = machine.program.symbol("v")
    # after at most drain_period more steps the store must drain
    machine.idle_tick()
    machine.idle_tick()
    assert machine.memory.read_word(addr) == 7


def test_own_load_forwards_from_store_buffer():
    source = """
.data
v: .word 0
.text
main:
    mov r1, 7
    store [v], r1
    load r2, [v]
    syscall
"""
    machine = make_machine(source,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=1000))
    for _ in range(3):
        machine.step_core(0)
    assert machine.cores[0].engine.regs[2] == 7
    assert len(machine.cores[0].store_buffer) == 1  # load didn't drain


def test_other_core_does_not_see_buffered_store():
    source = """
.data
v: .word 0
.text
main:
    mov r1, 7
    store [v], r1
    syscall
other:
    load r2, [v]
    syscall
"""
    machine = make_machine(source,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=1000))
    machine.step_core(0)
    machine.step_core(0)
    machine.cores[1].engine.pc = machine.program.symbol("other")
    machine.step_core(1)
    assert machine.cores[1].engine.regs[2] == 0  # TSO: not yet visible


def test_store_buffer_full_forces_oldest_drain():
    source = ".data\nbuf: .space 64\n.text\nmain:\n" + "".join(
        f"    store [buf + {4 * i}], {i + 1}\n" for i in range(5)) + "    syscall\n"
    machine = make_machine(source,
                           store_buffer=StoreBufferConfig(entries=4,
                                                          drain_period=10_000))
    for _ in range(5):
        machine.step_core(0)
    base = machine.program.symbol("buf")
    assert machine.memory.read_word(base) == 1          # oldest forced out
    assert machine.memory.read_word(base + 4) == 0      # rest still buffered
    assert len(machine.cores[0].store_buffer) == 4


def test_atomic_drains_store_buffer_first():
    source = """
.data
v: .word 0
w: .word 0
.text
main:
    mov r1, 9
    store [v], r1
    mov r2, 1
    xadd [w], r2
    syscall
"""
    machine = make_machine(source,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=10_000))
    for _ in range(4):
        machine.step_core(0)
    assert machine.memory.read_word(machine.program.symbol("v")) == 9
    assert machine.cores[0].store_buffer.empty


def test_partial_forward_conflict_drains():
    source = """
.data
v: .word 0
.text
main:
    mov r1, 0xFF
    storeb [v + 1], r1
    load r2, [v]
    syscall
"""
    machine = make_machine(source,
                           store_buffer=StoreBufferConfig(entries=8,
                                                          drain_period=10_000))
    for _ in range(3):
        machine.step_core(0)
    assert machine.cores[0].engine.regs[2] == 0xFF00
    assert machine.cores[0].store_buffer.empty


def test_coherent_copy_visible_and_invalidates():
    machine = make_machine(STORE_PROGRAM)
    addr = machine.program.symbol("v")
    # prime core 1's cache with the line
    line = machine.config.cache.line_of(addr)
    machine.cores[1].cache.fill(line, "E")
    machine.coherent_copy(machine.cores[0], addr, b"\x2a\x00\x00\x00")
    assert machine.memory.read_word(addr) == 42
    assert machine.cores[1].cache.state(line) is None


def test_coherent_copy_empty_is_noop():
    machine = make_machine(STORE_PROGRAM)
    before = machine.bus.stats.transactions
    machine.coherent_copy(machine.cores[0], 0, b"")
    assert machine.bus.stats.transactions == before


def test_coherent_copy_spanning_lines():
    machine = make_machine(STORE_PROGRAM)
    data = bytes(range(100))
    machine.coherent_copy(machine.cores[0], 60, data)
    assert machine.memory.read(60, 100) == data


def test_cycles_accumulate():
    machine = make_machine(STORE_PROGRAM)
    machine.step_core(0)
    assert machine.cores[0].cycles >= 1
    assert machine.total_cycles == sum(c.cycles for c in machine.cores)


def test_cache_miss_charged_more_than_hit():
    source = """
.data
v: .word 0
.text
main:
    load r1, [v]
    load r2, [v]
    syscall
"""
    machine = make_machine(source)
    machine.step_core(0)
    miss_cycles = machine.cores[0].cycles
    machine.step_core(0)
    hit_cycles = machine.cores[0].cycles - miss_cycles
    assert miss_cycles > hit_cycles


def test_fault_annotated_with_core():
    source = ".text\nmain:\n    mov r1, 2\n    load r2, [r1]\n"
    machine = make_machine(source)
    machine.step_core(0)
    with pytest.raises(MachineFault) as err:
        machine.step_core(0)
    assert err.value.core_id == 0


def test_step_without_program_faults():
    machine = Machine(MachineConfig(num_cores=1, memory_bytes=1 << 12))
    with pytest.raises(MachineFault):
        machine.step_core(0)


def test_stats_dict_shape():
    machine = make_machine(STORE_PROGRAM)
    machine.step_core(0)
    stats = machine.stats_dict()
    assert stats["global_steps"] == 1
    assert len(stats["cores"]) == 2
    assert "bus" in stats


def test_syscall_outcome_propagates():
    machine = make_machine(".text\nmain:\n    syscall\n")
    assert machine.step_core(0) == OUTCOME_SYSCALL
