from repro.config import CacheConfig
from repro.machine.bus import SnoopBus
from repro.machine.cache import EXCLUSIVE, MESICache, MODIFIED, SHARED


def make_bus(cores=2):
    bus = SnoopBus(cores)
    caches = [MESICache(CacheConfig()) for _ in range(cores)]
    for core_id, cache in enumerate(caches):
        bus.attach_cache(core_id, cache)
    return bus, caches


def test_read_with_no_sharers_fills_exclusive():
    bus, _caches = make_bus()
    result = bus.transaction(0, 0, is_write=False)
    assert result.fill_state == EXCLUSIVE


def test_read_with_sharer_fills_shared_and_downgrades():
    bus, caches = make_bus()
    caches[1].fill(0, MODIFIED)
    result = bus.transaction(0, 0, is_write=False)
    assert result.fill_state == SHARED
    assert caches[1].state(0) == SHARED
    assert result.flushed is False  # flush only tracked for writes


def test_write_invalidates_others():
    bus, caches = make_bus()
    caches[1].fill(0, SHARED)
    result = bus.transaction(0, 0, is_write=True)
    assert result.fill_state == MODIFIED
    assert caches[1].state(0) is None


def test_write_flushes_remote_modified():
    bus, caches = make_bus()
    caches[1].fill(0, MODIFIED)
    result = bus.transaction(0, 0, is_write=True)
    assert result.flushed is True
    assert bus.stats.flushes == 1


def test_requester_cache_not_snooped():
    bus, caches = make_bus()
    caches[0].fill(0, MODIFIED)
    bus.transaction(0, 0, is_write=True)
    assert caches[0].state(0) == MODIFIED


def test_stats_classify_transactions():
    bus, _caches = make_bus()
    bus.transaction(0, 0, is_write=False)
    bus.transaction(0, 64, is_write=True)
    bus.transaction(0, 64, is_write=True, upgrade=True)
    assert bus.stats.reads == 1
    assert bus.stats.read_exclusives == 1
    assert bus.stats.upgrades == 1
    assert bus.stats.transactions == 3


def test_sequence_monotone():
    bus, _caches = make_bus()
    first = bus.sequence
    bus.transaction(0, 0, is_write=False)
    bus.transaction(1, 64, is_write=False)
    assert bus.sequence == first + 2


def test_snoopers_collect_victim_timestamps():
    bus, _caches = make_bus(cores=3)

    class FakeSnooper:
        def __init__(self, ts):
            self.ts = ts

        def snoop(self, line, is_write):
            return self.ts

    bus.attach_snooper(1, FakeSnooper(5))
    bus.attach_snooper(2, FakeSnooper(9))
    result = bus.transaction(0, 0, is_write=True)
    assert sorted(result.victim_timestamps) == [5, 9]


def test_requester_snooper_skipped():
    bus, _caches = make_bus()

    class Boom:
        def snoop(self, line, is_write):
            raise AssertionError("requester must not snoop itself")

    bus.attach_snooper(0, Boom())
    result = bus.transaction(0, 0, is_write=True)
    assert result.victim_timestamps == []
