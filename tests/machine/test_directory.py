"""Directory coherence: exact-sharer tracking, lockstep equivalence.

The :class:`DirectoryBus` keeps the exact per-line cache-holder set next
to the conservative presence summary and notifies caches point-to-point.
Its contract is *bit-identity* with the reference snooping fabric:

- **lockstep**: driving both fabrics with the identical transaction
  sequence (against independent cache pairs) must yield identical
  ``BusResult``s — fill state, victim order, flush decision — identical
  cache contents/states after every step, and the sharer set must stay a
  subset of presence and a superset of the true holder set;
- **end-to-end**: recording any workload under ``coherence="directory"``
  produces exactly the snooping run's digest (chunks, logs, memory,
  cycles), at small and large core counts, and replays clean.

Plus the accounting: identical ``broadcast_snoops`` under both fabrics
(that is what makes the saved ratio comparable) and a growing
``notifies_saved`` / sharer histogram on the directory.
"""

import random

import pytest

from repro import session, workloads
from repro.config import (
    CacheConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
)
from repro.machine.bus import DirectoryBus, SnoopBus
from repro.machine.cache import EXCLUSIVE, MESICache, MODIFIED, SHARED
from repro.perf.bench import digest_of
from repro.replay.schedule import build_schedule, merge_core_streams


def _fabric_with_caches(bus_cls, num_cores=4, sets=4, ways=1,
                        filter_snoops=None):
    bus = bus_cls(num_cores, filter_snoops=filter_snoops)
    caches = []
    for core_id in range(num_cores):
        cache = MESICache(CacheConfig(sets=sets, ways=ways))
        bus.attach_cache(core_id, cache)
        caches.append(cache)
    return bus, caches


def _fill(bus, caches, core_id, line, is_write):
    result = bus.transaction(core_id, line, is_write)
    caches[core_id].fill(line, MODIFIED if is_write else result.fill_state)
    return result


class _StubRecorder:
    """Snooper returning scripted victim timestamps for chosen lines."""

    def __init__(self, victims=None):
        self.victims = dict(victims or {})
        self.seen = []

    def snoop(self, line, is_write):
        self.seen.append((line, is_write))
        return self.victims.pop(line, None)


# -- exact sharer transitions -------------------------------------------------

def test_untracked_line_defaults_to_everyone():
    bus, _ = _fabric_with_caches(DirectoryBus, num_cores=3)
    assert bus.sharer_mask(0x100) == 0b111
    assert bus.presence_mask(0x100) == 0b111


def test_write_narrows_sharers_and_presence_to_the_writer():
    bus, caches = _fabric_with_caches(DirectoryBus, num_cores=3)
    _fill(bus, caches, 1, 0x100, is_write=True)
    assert bus.sharer_mask(0x100) == 0b010
    assert bus.presence_mask(0x100) == 0b010


def test_reads_add_the_requester_to_both_sets():
    bus, caches = _fabric_with_caches(DirectoryBus, num_cores=3)
    _fill(bus, caches, 1, 0x100, is_write=True)
    _fill(bus, caches, 0, 0x100, is_write=False)
    assert bus.sharer_mask(0x100) == 0b011
    assert bus.presence_mask(0x100) == 0b011


def test_eviction_clears_the_sharer_bit_but_not_presence():
    # ways=1: a second line in the same set evicts the first. The evicted
    # core leaves the exact holder set (its cache really dropped the line)
    # but must stay in presence — its recorder signature may still hold it.
    bus, caches = _fabric_with_caches(DirectoryBus, num_cores=2,
                                      sets=4, ways=1)
    line, alias = 0x100, 0x100 + 4 * 64  # same set index
    _fill(bus, caches, 0, line, is_write=True)
    _fill(bus, caches, 0, alias, is_write=True)
    assert caches[0].state(line) is None  # evicted
    assert bus.sharer_mask(line) == 0b00
    assert bus.presence_mask(line) == 0b01


def test_flush_all_clears_sharer_bits():
    bus, caches = _fabric_with_caches(DirectoryBus, num_cores=2)
    _fill(bus, caches, 0, 0x100, is_write=True)
    _fill(bus, caches, 0, 0x140, is_write=True)
    caches[0].flush_all()
    assert bus.sharer_mask(0x100) == 0
    assert bus.sharer_mask(0x140) == 0


def test_evicted_core_recorder_is_still_snooped():
    """The Bloom-FP case: a core out of the sharer set but in presence
    must still get the recorder notification — its signature may
    false-positive on the line and terminate a chunk."""
    bus, caches = _fabric_with_caches(DirectoryBus, num_cores=2,
                                      sets=4, ways=1)
    recorder = _StubRecorder(victims={0x100: 7})
    bus.attach_snooper(0, recorder)
    line, alias = 0x100, 0x100 + 4 * 64
    _fill(bus, caches, 0, line, is_write=True)
    _fill(bus, caches, 0, alias, is_write=True)  # evicts `line` from core 0
    recorder.seen.clear()
    result = bus.transaction(1, line, is_write=True)
    assert recorder.seen == [(line, True)]  # presence bit kept it snooped
    assert result.victim_timestamps == [7]


# -- lockstep equivalence -----------------------------------------------------

@pytest.mark.parametrize("filter_snoops", [True, False])
@pytest.mark.parametrize("num_cores", [2, 4, 16])
def test_fabrics_agree_transaction_by_transaction(num_cores, filter_snoops):
    """Random transaction storms: both fabrics, fed the same sequence
    against independent cache pairs, agree on every observable — and the
    directory's exact sharer set stays wedged between the true holder set
    and the presence superset."""
    rng = random.Random(num_cores * 31 + filter_snoops)
    snoop_bus, snoop_caches = _fabric_with_caches(
        SnoopBus, num_cores=num_cores, filter_snoops=filter_snoops)
    dir_bus, dir_caches = _fabric_with_caches(
        DirectoryBus, num_cores=num_cores, filter_snoops=filter_snoops)
    # Mirrored scripted recorders so victim timestamps flow identically.
    script = {0x100 + 64 * k: 100 + k for k in range(4)}
    for core_id in range(num_cores):
        snoop_bus.attach_snooper(core_id, _StubRecorder(script))
        dir_bus.attach_snooper(core_id, _StubRecorder(script))

    lines = [0x100 + 64 * k for k in range(10)]  # a few set-aliasing pairs
    for step in range(600):
        core_id = rng.randrange(num_cores)
        line = rng.choice(lines)
        is_write = rng.random() < 0.4
        a = _fill(snoop_bus, snoop_caches, core_id, line, is_write)
        b = _fill(dir_bus, dir_caches, core_id, line, is_write)
        assert a.fill_state == b.fill_state, f"step {step}"
        assert a.victim_timestamps == b.victim_timestamps, f"step {step}"
        assert a.flushed == b.flushed, f"step {step}"
        for sc, dc in zip(snoop_caches, dir_caches):
            assert sc.cached_lines() == dc.cached_lines()
            for cached in sc.cached_lines():
                assert sc.state(cached) == dc.state(cached)
        for check in lines:
            sharers = dir_bus.sharer_mask(check)
            presence = dir_bus.presence_mask(check)
            assert sharers & ~presence == 0, \
                f"sharers ⊄ presence for line {check:#x}"
            true_holders = sum(
                1 << cid for cid, cache in enumerate(dir_caches)
                if cache.state(check) is not None)
            assert true_holders & ~sharers == 0, \
                f"sharer set misses a holder for line {check:#x}"
    assert snoop_bus.stats.flushes == dir_bus.stats.flushes
    assert snoop_bus.stats.broadcast_snoops == dir_bus.stats.broadcast_snoops
    assert dir_bus.stats.notifies_sent <= snoop_bus.stats.notifies_sent
    assert (dir_bus.stats.notifies_sent + dir_bus.stats.notifies_saved
            == dir_bus.stats.broadcast_snoops)


# -- end-to-end bit-identity --------------------------------------------------

def _config(num_cores, coherence):
    return SimConfig(machine=MachineConfig(num_cores=num_cores,
                                           coherence=coherence))


@pytest.mark.parametrize("num_cores", [4, 16])
@pytest.mark.parametrize("workload", ["counter", "pingpong"])
def test_directory_recording_is_bit_identical(workload, num_cores):
    program, inputs = workloads.build(workload, threads=num_cores, scale=1)
    runs = {}
    for coherence in ("snoop", "directory"):
        runs[coherence] = session.record(
            program, seed=6, input_files=inputs,
            config=_config(num_cores, coherence))
    snoop, directory = runs["snoop"], runs["directory"]
    assert digest_of(snoop) == digest_of(directory)
    assert snoop.total_cycles == directory.total_cycles
    assert (build_schedule(snoop.recording.chunks)
            == build_schedule(directory.recording.chunks))
    # Per-core streams merge to the same schedule under both fabrics.
    assert (merge_core_streams(directory.core_chunk_logs)
            == build_schedule(directory.recording.chunks))


def test_directory_under_stress_config_stays_identical():
    """Tiny caches (constant evictions — the sharer set churns hard),
    shallow store buffer, small chunks: the adversarial setting for the
    exact-sharer bookkeeping."""
    def config(coherence):
        return SimConfig(
            machine=MachineConfig(
                num_cores=4,
                memory_bytes=1 << 18,
                cache=CacheConfig(sets=4, ways=1),
                store_buffer=StoreBufferConfig(entries=4, drain_period=4),
                coherence=coherence,
            ),
            mrr=MRRConfig(signature_bits=256, cbuf_entries=16,
                          max_chunk_instructions=512),
        )

    program, inputs = workloads.build("pingpong", scale=1)
    snoop = session.record(program, seed=11, input_files=inputs,
                           config=config("snoop"))
    directory = session.record(program, seed=11, input_files=inputs,
                               config=config("directory"))
    assert digest_of(snoop) == digest_of(directory)


def test_record_and_replay_under_directory():
    program, inputs = workloads.build("barnes")
    outcome, _replayed, report = session.record_and_replay(
        program, seed=2, input_files=inputs,
        config=_config(8, "directory"))
    assert report.ok
    assert outcome.machine_stats["bus"]["notifies_saved"] > 0
    assert outcome.machine_stats["bus"]["sharer_hist"]


def test_directory_saves_notifies_on_sharing_heavy_workloads():
    program, inputs = workloads.build("pingpong", threads=16, scale=1)
    outcome = session.record(program, seed=2, input_files=inputs,
                             config=_config(16, "directory"))
    bus = outcome.machine_stats["bus"]
    # Sharing is pairwise, so at 16 cores point-to-point should beat the
    # 15-way broadcast by a wide margin.
    assert bus["notifies_saved"] > bus["notifies_sent"]
