import pytest

from repro.machine.store_buffer import (
    PendingStore,
    RESOLVE_CONFLICT,
    RESOLVE_HIT,
    RESOLVE_MISS,
    StoreBuffer,
)


def test_fifo_drain_order():
    sb = StoreBuffer(4)
    sb.push(0, 4, 1)
    sb.push(4, 4, 2)
    assert sb.pop_oldest().value == 1
    assert sb.pop_oldest().value == 2


def test_capacity_enforced():
    sb = StoreBuffer(2)
    sb.push(0, 4, 1)
    sb.push(4, 4, 2)
    assert sb.full
    with pytest.raises(OverflowError):
        sb.push(8, 4, 3)


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        StoreBuffer(1).pop_oldest()


def test_forwarding_hits_youngest_cover():
    sb = StoreBuffer(4)
    sb.push(0, 4, 0xAAAAAAAA)
    sb.push(0, 4, 0xBBBBBBBB)
    status, value = sb.resolve(0, 4)
    assert status == RESOLVE_HIT
    assert value == 0xBBBBBBBB


def test_forwarding_byte_from_word():
    sb = StoreBuffer(4)
    sb.push(0, 4, 0x11223344)
    status, value = sb.resolve(1, 1)
    assert status == RESOLVE_HIT
    assert value == 0x33


def test_word_load_over_byte_store_conflicts():
    sb = StoreBuffer(4)
    sb.push(1, 1, 0xFF)
    status, value = sb.resolve(0, 4)
    assert status == RESOLVE_CONFLICT
    assert value is None


def test_no_overlap_misses():
    sb = StoreBuffer(4)
    sb.push(0, 4, 1)
    status, _value = sb.resolve(8, 4)
    assert status == RESOLVE_MISS


def test_younger_cover_wins_over_older_partial():
    sb = StoreBuffer(4)
    sb.push(1, 1, 0x55)         # older, partial for a word load at 0
    sb.push(0, 4, 0x11223344)   # younger, covers
    status, value = sb.resolve(0, 4)
    assert status == RESOLVE_HIT
    assert value == 0x11223344


def test_values_masked_to_32_bits():
    sb = StoreBuffer(2)
    sb.push(0, 4, 1 << 40)
    assert sb.pop_oldest().value == 0


def test_entries_snapshot_order():
    sb = StoreBuffer(4)
    sb.push(0, 4, 1)
    sb.push(4, 4, 2)
    addrs = [entry.addr for entry in sb.entries()]
    assert addrs == [0, 4]


def test_clear():
    sb = StoreBuffer(4)
    sb.push(0, 4, 1)
    sb.clear()
    assert sb.empty and len(sb) == 0


def test_pending_store_cover_and_overlap():
    entry = PendingStore(4, 4, 0xDDCCBBAA)
    assert entry.covers(4, 4)
    assert entry.covers(6, 1)
    assert not entry.covers(2, 4)
    assert entry.overlaps(6, 4)
    assert not entry.overlaps(8, 4)
    assert entry.extract(5, 1) == 0xBB


def test_capacity_validation():
    with pytest.raises(ValueError):
        StoreBuffer(0)
