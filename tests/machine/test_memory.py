import pytest

from repro.errors import MemoryAccessError
from repro.machine.memory import PhysicalMemory


def test_words_little_endian():
    mem = PhysicalMemory(64)
    mem.write_word(0, 0x11223344)
    assert mem.read(0, 4) == b"\x44\x33\x22\x11"
    assert mem.read_word(0) == 0x11223344


def test_word_value_masked():
    mem = PhysicalMemory(64)
    mem.write_word(0, -1)
    assert mem.read_word(0) == 0xFFFFFFFF


def test_bytes():
    mem = PhysicalMemory(64)
    mem.write_byte(5, 0x1FF)
    assert mem.read_byte(5) == 0xFF


def test_misaligned_word_access_faults():
    mem = PhysicalMemory(64)
    with pytest.raises(MemoryAccessError):
        mem.read_word(2)
    with pytest.raises(MemoryAccessError):
        mem.write_word(6, 1)


def test_out_of_range_faults():
    mem = PhysicalMemory(64)
    with pytest.raises(MemoryAccessError):
        mem.read_word(64)
    with pytest.raises(MemoryAccessError):
        mem.write_byte(64, 1)
    with pytest.raises(MemoryAccessError):
        mem.read(60, 8)


def test_negative_address_faults():
    mem = PhysicalMemory(64)
    with pytest.raises(MemoryAccessError):
        mem.read_byte(-1)


def test_zero_size_rejected():
    with pytest.raises(MemoryAccessError):
        PhysicalMemory(0)


def test_load_blob_and_range_read():
    mem = PhysicalMemory(64)
    mem.load_blob(8, b"abcd")
    assert mem.read(8, 4) == b"abcd"


def test_digest_changes_with_content():
    mem = PhysicalMemory(64)
    before = mem.digest()
    mem.write_byte(0, 1)
    assert mem.digest() != before


def test_digest_range_isolates_area():
    mem = PhysicalMemory(64)
    base = mem.digest_range(0, 32)
    mem.write_byte(40, 9)
    assert mem.digest_range(0, 32) == base


def test_snapshot_is_copy():
    mem = PhysicalMemory(16)
    snap = mem.snapshot()
    mem.write_byte(0, 7)
    assert snap[0] == 0
