"""Presence-based snoop filtering: MESI invariants and equivalence.

The bus keeps a conservative per-line presence summary (bit ``c`` set means
core ``c`` *may* hold the line) and, when filtering is on, skips snooping
cores whose bit is clear. Soundness rests on two invariants pinned here:

- **cache superset**: every core actually caching a line has its presence
  bit set — through fills, evictions (which do NOT clear bits) and kernel
  coherent copies;
- **signature superset**: every line a recorder has inserted into its live
  signatures has that core's presence bit set, so a filtered transaction
  can never skip a snoop that would have terminated a chunk.

Plus the end-to-end check: filtering on and off produce bit-identical
recordings.
"""

import pytest

from repro import session, workloads
from repro.config import (
    CacheConfig,
    KernelConfig,
    MachineConfig,
    MRRConfig,
    SimConfig,
    StoreBufferConfig,
)
from repro.machine.bus import SnoopBus
from repro.machine.cache import EXCLUSIVE, MESICache, MODIFIED, SHARED
from repro.perf.bench import digest_of
from repro.telemetry import Telemetry


def _bus_with_caches(num_cores=3, sets=4, ways=1, filter_snoops=None):
    bus = SnoopBus(num_cores, filter_snoops=filter_snoops)
    caches = []
    for core_id in range(num_cores):
        cache = MESICache(CacheConfig(sets=sets, ways=ways))
        bus.attach_cache(core_id, cache)
        caches.append(cache)
    return bus, caches


def _fill(bus, caches, core_id, line, is_write):
    result = bus.transaction(core_id, line, is_write)
    caches[core_id].fill(line, MODIFIED if is_write else result.fill_state)
    return result


class _CountingSnooper:
    """Records which (line, is_write) snoops reached this core."""

    def __init__(self):
        self.seen = []

    def snoop(self, line, is_write):
        self.seen.append((line, is_write))
        return None


# -- presence transitions -----------------------------------------------------

def test_unknown_line_defaults_to_everyone_present():
    bus, _ = _bus_with_caches(num_cores=3)
    assert bus.presence_mask(0x100) == 0b111


def test_write_narrows_presence_to_the_writer():
    bus, caches = _bus_with_caches(num_cores=3)
    _fill(bus, caches, 1, 0x100, is_write=True)
    assert bus.presence_mask(0x100) == 0b010


def test_reads_only_add_bits():
    bus, caches = _bus_with_caches(num_cores=3)
    _fill(bus, caches, 1, 0x100, is_write=True)
    _fill(bus, caches, 0, 0x100, is_write=False)
    assert bus.presence_mask(0x100) == 0b011
    _fill(bus, caches, 2, 0x100, is_write=False)
    assert bus.presence_mask(0x100) == 0b111


def test_eviction_keeps_the_presence_bit():
    # ways=1 so a second line in the same set evicts the first; the evicted
    # core may still carry the line in a chunk signature, so its bit must
    # survive (superset, not exact).
    bus, caches = _bus_with_caches(num_cores=2, sets=4, ways=1)
    line, alias = 0x100, 0x100 + 4 * 64  # same set index
    _fill(bus, caches, 0, line, is_write=True)
    _fill(bus, caches, 0, alias, is_write=True)
    assert caches[0].state(line) is None  # evicted
    assert bus.presence_mask(line) == 0b01  # bit still set


def test_filter_skips_absent_cores_and_off_snoops_everyone():
    for filtered in (True, False):
        bus, caches = _bus_with_caches(num_cores=3, filter_snoops=filtered)
        snoopers = [_CountingSnooper() for _ in range(3)]
        for core_id, snooper in enumerate(snoopers):
            bus.attach_snooper(core_id, snooper)
        _fill(bus, caches, 1, 0x100, is_write=True)  # presence -> {1}
        for snooper in snoopers:
            snooper.seen.clear()
        _fill(bus, caches, 1, 0x100, is_write=True)
        assert snoopers[1].seen == []  # requester is never self-snooped
        expected = [] if filtered else [(0x100, True)]
        assert snoopers[0].seen == expected
        assert snoopers[2].seen == expected


def test_mesi_conflict_detection_unchanged_by_filtering():
    """A genuinely-present sharer is always snooped and invalidated."""
    bus, caches = _bus_with_caches(num_cores=2, filter_snoops=True)
    _fill(bus, caches, 0, 0x200, is_write=False)
    _fill(bus, caches, 1, 0x200, is_write=False)
    assert caches[0].state(0x200) in (SHARED, EXCLUSIVE)
    _fill(bus, caches, 1, 0x200, is_write=True)
    assert caches[0].state(0x200) is None  # invalidated despite filtering
    assert bus.presence_mask(0x200) == 0b10


# -- whole-run invariant sweep ------------------------------------------------

def _checked_transaction(errors):
    original = SnoopBus.transaction

    def transaction(self, requester, line, is_write, upgrade=False):
        result = original(self, requester, line, is_write, upgrade)
        for tracked_line, present in self._presence.items():
            for core_id, cache in enumerate(self._caches):
                if cache is None:
                    continue
                if (cache.state(tracked_line) is not None
                        and not present >> core_id & 1):
                    errors.append(
                        f"core {core_id} caches line {tracked_line:#x} "
                        "but its presence bit is clear")
            for core_id, recorder in enumerate(self._snoopers):
                if recorder is None or recorder.rthread is None:
                    continue
                for sig_line in (recorder._exact_reads
                                 | recorder._exact_writes):
                    if (sig_line in self._presence
                            and not self._presence[sig_line]
                            >> core_id & 1):
                        errors.append(
                            f"core {core_id} signature holds line "
                            f"{sig_line:#x} but its presence bit is clear")
        return result

    return transaction


@pytest.mark.parametrize("workload", ["counter", "pingpong"])
def test_presence_superset_invariant_throughout_recording(
        monkeypatch, workload):
    """During a real recorded run — with a tiny cache forcing constant
    evictions — the presence summary stays a superset of both the true
    holder set and every recorder's exact signature contents.

    Telemetry is enabled so the recorders maintain their exact shadow
    sets, including lines added by kernel coherent copies
    (``on_copy_read``/``on_copy_write``).
    """
    errors = []
    monkeypatch.setattr(SnoopBus, "transaction", _checked_transaction(errors))
    config = SimConfig(
        machine=MachineConfig(
            num_cores=2,
            memory_bytes=1 << 18,
            cache=CacheConfig(sets=4, ways=1),  # evicts almost every fill
            store_buffer=StoreBufferConfig(entries=4, drain_period=4),
        ),
        mrr=MRRConfig(signature_bits=256, cbuf_entries=16,
                      max_chunk_instructions=512),
        kernel=KernelConfig(quantum_instructions=200),
    )
    program, inputs = workloads.build(workload, scale=1)
    outcome = session.record(program, seed=5, input_files=inputs,
                             config=config,
                             telemetry=Telemetry(enabled=True))
    assert outcome.units > 0
    assert errors == []


def test_recording_digest_identical_with_filtering_off(monkeypatch):
    program, inputs = workloads.build("pingpong", scale=1)
    filtered = session.record(program, seed=4, input_files=inputs)
    monkeypatch.setattr("repro.machine.bus.SNOOP_FILTER_DEFAULT", False)
    unfiltered = session.record(program, seed=4, input_files=inputs)
    assert digest_of(filtered) == digest_of(unfiltered)
    assert filtered.total_cycles == unfiltered.total_cycles
    assert (len(filtered.recording.chunks)
            == len(unfiltered.recording.chunks))
