import pytest

from repro import workloads
from repro.errors import ReproError
from repro.perf.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.perf.overhead import OverheadResult, measure_overhead


def test_cost_model_is_frozen_value():
    with pytest.raises(Exception):
        DEFAULT_COST_MODEL.unit = 2  # type: ignore[misc]


def test_cost_model_as_dict_lists_all_constants():
    constants = DEFAULT_COST_MODEL.as_dict()
    assert constants["unit"] == 1
    assert "rsm_syscall_interpose" in constants
    assert all(isinstance(v, int) for v in constants.values())


@pytest.fixture(scope="module")
def counter_overhead():
    program, inputs = workloads.build("counter", threads=2)
    return measure_overhead(program, seed=1, input_files=inputs)


def test_modes_agree_on_final_state(counter_overhead):
    r = counter_overhead
    assert r.native.final_memory_digest == r.full.final_memory_digest


def test_overheads_ordered(counter_overhead):
    r = counter_overhead
    assert 0 <= r.hw_overhead < r.full_overhead


def test_breakdown_fractions_cover_software_cost(counter_overhead):
    r = counter_overhead
    breakdown = r.software_breakdown()
    assert all(value >= 0 for value in breakdown.values())
    total = sum(breakdown.values()) * r.native.total_cycles
    software = (r.full.total_cycles - r.hw_only.total_cycles)
    # breakdown components account for (nearly) all of full-vs-hw delta
    assert abs(total - software) / max(software, 1) < 0.05


def test_as_row_shape(counter_overhead):
    row = counter_overhead.as_row()
    assert row["workload"] == "counter"
    assert row["full_overhead_pct"] > row["hw_overhead_pct"]


def test_divergent_modes_raise():
    # prodcons final memory depends on the schedule (which consumer got
    # which items), so different seeds give different digests.
    program, _ = workloads.build("prodcons", threads=3)
    from repro import session

    native = session.simulate(program, seed=1)
    other = session.simulate(program, seed=2, mode=session.MODE_HW)
    full = session.simulate(program, seed=1, mode=session.MODE_FULL)
    assert native.final_memory_digest != other.final_memory_digest
    with pytest.raises(ReproError):
        OverheadResult("x", native, other, full)


def test_custom_cost_model_scales_costs():
    from repro import session

    program, _ = workloads.build("counter", threads=2)
    cheap = session.simulate(program, seed=1, cost=CostModel())
    pricey = session.simulate(program, seed=1,
                              cost=CostModel(l1_miss=300))
    assert pricey.total_cycles > cheap.total_cycles
    assert pricey.final_memory_digest == cheap.final_memory_digest


# -- overhead trajectory (batched leg + log bandwidth) -----------------------

@pytest.fixture(scope="module")
def batched_overhead():
    program, inputs = workloads.build("counter", threads=2)
    return measure_overhead(program, seed=1, input_files=inputs,
                            batch_events=64)


def test_batched_leg_measured_and_cheaper(batched_overhead):
    r = batched_overhead
    assert r.full_batched is not None
    assert r.batched_overhead is not None
    assert r.batched_overhead <= r.full_overhead
    # batching never alters execution
    assert r.full_batched.final_memory_digest == r.full.final_memory_digest


def test_batched_leg_optional(counter_overhead):
    assert counter_overhead.full_batched is None
    assert counter_overhead.batched_overhead is None
    assert "batched_overhead_pct" not in counter_overhead.as_row()


def test_log_bandwidth_fields(batched_overhead):
    bw = batched_overhead.log_bandwidth()
    assert bw["total_bytes_v2"] <= bw["total_bytes_v1"]
    assert bw["total_B_per_ki_v2"] <= bw["total_B_per_ki_v1"]
    row = batched_overhead.as_row()
    assert row["batched_overhead_pct"] <= row["full_overhead_pct"]
    assert row["input_bytes_v2"] <= row["input_bytes_v1"]
