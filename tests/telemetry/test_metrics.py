import pytest

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_increments():
    counter = Counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_gauge_last_write_wins():
    gauge = Gauge("g")
    gauge.set(10)
    gauge.set(3.5)
    assert gauge.value == 3.5


def test_histogram_summary():
    hist = Histogram("h")
    for value in (1, 2, 3, 100):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 4
    assert snap["min"] == 1
    assert snap["max"] == 100
    assert snap["mean"] == pytest.approx(26.5)
    # p50 falls in the bucket holding 2 and 3 → upper bound 3
    assert snap["p50"] == 3
    assert snap["p90"] >= 100 / 2  # within a power of two of the max


def test_histogram_empty():
    hist = Histogram("h")
    assert hist.snapshot() == {
        "count": 0, "mean": 0.0, "min": 0, "p50": 0.0, "p90": 0.0, "max": 0}


def test_registry_get_or_create_and_snapshot():
    registry = MetricsRegistry()
    registry.counter("b.count").inc(2)
    registry.gauge("a.size").set(7)
    registry.histogram("c.dist").observe(4)
    assert registry.counter("b.count").value == 2  # same handle
    snap = registry.snapshot()
    assert list(snap) == ["a.size", "b.count", "c.dist"]  # sorted
    assert snap["b.count"] == 2
    assert snap["a.size"] == 7
    assert snap["c.dist"]["count"] == 1


def test_registry_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
