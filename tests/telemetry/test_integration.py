"""Telemetry end-to-end guarantees.

The two contracts the subsystem lives by:

1. *No influence*: enabling telemetry changes nothing observable about the
   run — digests, cycles and the encoded logs are bit-identical to a run
   with it disabled (the disabled path itself is the seed behaviour).
2. *Honesty*: the counters agree with the recording's own ground truth
   (chunk counts, event counts, log sizes) and the exported trace is a
   valid Chrome trace-event document covering every instrumented layer.
"""

import dataclasses
import json

from repro import session, workloads
from repro.config import DEFAULT_CONFIG, TelemetryConfig
from repro.mrr.logfmt import encode_chunks
from repro.telemetry import NULL_TELEMETRY, Telemetry, validate_trace


def _record(config=None, **kwargs):
    program, inputs = workloads.build("counter", threads=2)
    return session.record(program, seed=3, config=config,
                          input_files=inputs, **kwargs)


def _traced_config(sampling=1):
    return dataclasses.replace(
        DEFAULT_CONFIG,
        telemetry=TelemetryConfig(enabled=True, sampling=sampling))


def test_disabled_run_uses_null_telemetry():
    outcome = _record()
    assert outcome.telemetry is NULL_TELEMETRY
    assert not outcome.telemetry.enabled
    assert len(outcome.telemetry.tracer) == 0
    assert len(outcome.telemetry.metrics) == 0


def test_enabled_run_is_bit_identical_to_disabled():
    plain = _record()
    traced = _record(config=_traced_config())
    assert traced.final_memory_digest == plain.final_memory_digest
    assert traced.total_cycles == plain.total_cycles
    assert traced.units == plain.units
    assert traced.rsm_stats == plain.rsm_stats
    # the logs themselves are bit-identical
    assert (encode_chunks(traced.recording.chunks)
            == encode_chunks(plain.recording.chunks))
    assert [dataclasses.astuple(e) for e in traced.recording.events] \
        == [dataclasses.astuple(e) for e in plain.recording.events]


def test_counters_match_recording_totals():
    outcome = _record(config=_traced_config())
    recording = outcome.recording
    snap = outcome.telemetry.snapshot()
    assert snap["mrr.chunks_total"] == len(recording.chunks)
    assert snap["capo.input_events"] == len(recording.events)
    assert snap["recording.chunks"] == len(recording.chunks)
    assert snap["recording.chunk_log_bytes"] == recording.chunk_log_bytes()
    assert snap["recording.input_log_bytes"] == recording.input_log_bytes()
    assert snap["kernel.syscalls"] == outcome.kernel_stats["syscalls"]
    # per-reason chunk counters partition the total
    by_reason = sum(value for name, value in snap.items()
                    if name.startswith("mrr.chunks."))
    assert by_reason == len(recording.chunks)
    # chunk-size histogram saw every chunk
    assert snap["mrr.chunk_instructions"]["count"] == len(recording.chunks)


def test_trace_covers_all_recording_layers(tmp_path):
    outcome = _record(config=_traced_config())
    tracer = outcome.telemetry.tracer
    assert {"machine", "mrr", "capo", "kernel"} <= tracer.categories()
    document = json.loads(tracer.save(tmp_path / "t.json").read_text())
    assert validate_trace(document) == []


def test_replay_metrics_and_stalls():
    outcome = _record(config=_traced_config())
    telemetry = outcome.telemetry
    result = session.replay_recording(outcome.recording, telemetry=telemetry)
    snap = telemetry.snapshot()
    assert snap["replay.chunks"] == result.stats.chunks
    assert snap["replay.schedule_chunks"] == len(outcome.recording.chunks)
    assert snap["replay.events_applied"] == result.stats.events
    assert "replay" in telemetry.tracer.categories()


def test_explicit_telemetry_overrides_config():
    telemetry = Telemetry(sampling=4)
    outcome = _record(telemetry=telemetry)  # default (disabled) config
    assert outcome.telemetry is telemetry
    assert telemetry.snapshot()["mrr.chunks_total"] == \
        len(outcome.recording.chunks)


def test_bloom_false_positives_counted_under_tiny_signature():
    # A 32-bit signature over a racy workload saturates quickly: snoop
    # hits are then mostly false positives, which the exact shadow sets
    # detect. The run must still record and count every termination.
    program, inputs = workloads.build("counter", threads=4)
    config = dataclasses.replace(
        _traced_config(),
        mrr=dataclasses.replace(DEFAULT_CONFIG.mrr, signature_bits=32,
                                saturation_threshold=1.0))
    outcome = session.record(program, seed=1, config=config,
                             input_files=inputs)
    snap = outcome.telemetry.snapshot()
    assert snap["mrr.snoop_terminations"] > 0
    assert snap["mrr.bloom_false_positives"] <= snap["mrr.snoop_terminations"]


def test_telemetry_config_round_trips_in_bundle(tmp_path):
    from repro.capo.recording import Recording

    outcome = _record(config=_traced_config(sampling=16))
    path = outcome.recording.save(tmp_path / "rec")
    loaded = Recording.load(path)
    assert loaded.config.telemetry.enabled
    assert loaded.config.telemetry.sampling == 16


def test_old_bundles_without_telemetry_section_load(tmp_path):
    from repro.capo.recording import Recording

    outcome = _record()
    path = outcome.recording.save(tmp_path / "rec")
    manifest_path = path / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["config"]["telemetry"]  # pre-telemetry bundle
    manifest_path.write_text(json.dumps(manifest))
    loaded = Recording.load(path)
    assert not loaded.config.telemetry.enabled
    assert session.replay_recording(loaded) is not None
