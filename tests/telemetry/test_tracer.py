import json

from repro.telemetry.tracer import Tracer, validate_trace


def test_instant_and_counter_events():
    tracer = Tracer()
    tracer.instant("hello", cat="test", tid=3, args={"k": 1})
    tracer.counter("load", {"a": 1, "b": 2}, cat="test")
    assert len(tracer) == 2
    instant, counter = tracer.events
    assert instant["ph"] == "i" and instant["tid"] == 3
    assert counter["ph"] == "C" and counter["args"] == {"a": 1, "b": 2}


def test_complete_span_duration():
    tracer = Tracer()
    ticks = iter(range(10, 100))
    tracer.clock = lambda: next(ticks)
    start = tracer.now()          # 10
    span_name = "work"
    tracer.complete(span_name, start, cat="test")  # ends at 11
    event = tracer.events[0]
    assert event["ph"] == "X"
    assert event["ts"] == 10
    assert event["dur"] == 1


def test_fallback_clock_is_monotone():
    tracer = Tracer()
    stamps = [tracer.now() for _ in range(5)]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == 5


def test_export_round_trips_and_validates(tmp_path):
    tracer = Tracer()
    tracer.thread_name(1, "rthread 1")
    tracer.instant("a", cat="x")
    tracer.complete("b", tracer.now(), cat="y", args={"n": 1})
    tracer.counter("c", {"v": 3}, cat="x")
    path = tracer.save(tmp_path / "trace.json")
    document = json.loads(path.read_text())
    assert validate_trace(document) == []
    assert len(document["traceEvents"]) == 4
    assert tracer.categories() == {"x", "y"}


def test_validate_trace_flags_bad_shapes():
    assert validate_trace({}) == ["traceEvents missing or not a list"]
    problems = validate_trace({"traceEvents": [
        {"name": "x", "ph": "?", "ts": -1, "pid": 0, "tid": 0},
        {"ph": "i", "ts": 0, "pid": 0, "tid": 0},
        {"name": "s", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
    ]})
    assert any("unknown phase" in p for p in problems)
    assert any("ts must be" in p for p in problems)
    assert any("missing 'name'" in p for p in problems)
    assert any("needs non-negative dur" in p for p in problems)
