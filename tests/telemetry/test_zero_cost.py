"""The zero-cost-when-disabled telemetry contract, measured directly.

Every hot path hoists ``telemetry.enabled`` into a plain attribute at
component construction time, so a disabled run must read the flag a small,
*constant* number of times — independent of how much work the simulation
does. A counting stub makes that measurable: if some per-unit or per-event
path regresses to consulting the telemetry object, the read count scales
with the run and this suite fails.
"""

from repro import session, workloads
from repro.perf.bench import digest_of
from repro.telemetry import NULL_TELEMETRY, Telemetry


class CountingTelemetry(Telemetry):
    """Disabled telemetry whose ``enabled`` flag counts its own reads."""

    def __init__(self):
        self.enabled_reads = 0
        super().__init__(enabled=False)

    @property
    def enabled(self):
        self.enabled_reads += 1
        return False

    @enabled.setter
    def enabled(self, value):
        pass


def _record(scale, telemetry):
    program, inputs = workloads.build("counter", scale=scale)
    return session.record(program, seed=2, input_files=inputs,
                          telemetry=telemetry)


def test_disabled_flag_reads_do_not_scale_with_work():
    small_stub, large_stub = CountingTelemetry(), CountingTelemetry()
    small = _record(1, small_stub)
    large = _record(3, large_stub)
    assert large.units > 2 * small.units  # the runs really differ in size
    assert small_stub.enabled_reads == large_stub.enabled_reads
    # Setup-only reads: a handful of constructors plus the session
    # wrapper, nowhere near per-unit or per-chunk counts.
    assert small_stub.enabled_reads < 50


def test_disabled_stub_run_is_bit_identical_to_null_telemetry():
    stub = _record(1, CountingTelemetry())
    null = _record(1, NULL_TELEMETRY)
    assert digest_of(stub) == digest_of(null)
    assert stub.total_cycles == null.total_cycles


def test_enabled_run_keeps_the_digest_too():
    """Telemetry observes, never influences: enabling it changes nothing
    about the simulation itself."""
    disabled = _record(1, NULL_TELEMETRY)
    enabled = _record(1, Telemetry(enabled=True))
    assert digest_of(enabled) == digest_of(disabled)
