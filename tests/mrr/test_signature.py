import pytest

from repro.mrr.signature import BloomSignature


def test_insert_then_test_never_false_negative():
    sig = BloomSignature(256, 2)
    lines = list(range(0, 64 * 40, 64))
    for line in lines:
        sig.insert(line)
    for line in lines:
        assert sig.test(line)


def test_empty_signature_tests_negative():
    sig = BloomSignature(256, 2)
    assert not sig.test(0)
    assert sig.empty


def test_clear_resets_everything():
    sig = BloomSignature(256, 2)
    sig.insert(64)
    sig.clear()
    assert sig.empty
    assert sig.bits_set == 0
    assert sig.inserts == 0
    assert not sig.test(64)


def test_bits_set_tracks_popcount():
    sig = BloomSignature(256, 2)
    sig.insert(64)
    assert 1 <= sig.bits_set <= 2
    before = sig.bits_set
    sig.insert(64)  # same key adds no bits
    assert sig.bits_set == before


def test_saturation_fraction():
    sig = BloomSignature(64, 1)
    assert sig.saturation == 0.0
    for line in range(0, 64 * 200, 64):
        sig.insert(line)
    assert 0.5 < sig.saturation <= 1.0


def test_false_positive_rate_estimate_monotone():
    sig = BloomSignature(128, 2)
    previous = sig.false_positive_rate()
    for line in range(0, 64 * 50, 64):
        sig.insert(line)
        rate = sig.false_positive_rate()
        assert rate >= previous
        previous = rate


def test_contains_operator():
    sig = BloomSignature(256, 2)
    sig.insert(128)
    assert 128 in sig


def test_false_positives_possible_but_bounded_when_sparse():
    sig = BloomSignature(1024, 2)
    sig.insert(64)
    false_hits = sum(1 for line in range(64 * 100, 64 * 600, 64)
                     if sig.test(line))
    assert false_hits < 10  # nearly-empty filter barely aliases


def test_validation():
    with pytest.raises(ValueError):
        BloomSignature(100, 2)
