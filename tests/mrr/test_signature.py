import pytest

from repro.mrr.hashing import H3Hasher, shared_hasher
from repro.mrr.signature import BloomSignature


def test_insert_then_test_never_false_negative():
    sig = BloomSignature(256, 2)
    lines = list(range(0, 64 * 40, 64))
    for line in lines:
        sig.insert(line)
    for line in lines:
        assert sig.test(line)


def test_empty_signature_tests_negative():
    sig = BloomSignature(256, 2)
    assert not sig.test(0)
    assert sig.empty


def test_clear_resets_everything():
    sig = BloomSignature(256, 2)
    sig.insert(64)
    sig.clear()
    assert sig.empty
    assert sig.bits_set == 0
    assert sig.inserts == 0
    assert not sig.test(64)


def test_bits_set_tracks_popcount():
    sig = BloomSignature(256, 2)
    sig.insert(64)
    assert 1 <= sig.bits_set <= 2
    before = sig.bits_set
    sig.insert(64)  # same key adds no bits
    assert sig.bits_set == before


def test_saturation_fraction():
    sig = BloomSignature(64, 1)
    assert sig.saturation == 0.0
    for line in range(0, 64 * 200, 64):
        sig.insert(line)
    assert 0.5 < sig.saturation <= 1.0


def test_false_positive_rate_estimate_monotone():
    sig = BloomSignature(128, 2)
    previous = sig.false_positive_rate()
    for line in range(0, 64 * 50, 64):
        sig.insert(line)
        rate = sig.false_positive_rate()
        assert rate >= previous
        previous = rate


def test_contains_operator():
    sig = BloomSignature(256, 2)
    sig.insert(128)
    assert 128 in sig


def test_false_positives_possible_but_bounded_when_sparse():
    sig = BloomSignature(1024, 2)
    sig.insert(64)
    false_hits = sum(1 for line in range(64 * 100, 64 * 600, 64)
                     if sig.test(line))
    assert false_hits < 10  # nearly-empty filter barely aliases


def test_validation():
    with pytest.raises(ValueError):
        BloomSignature(100, 2)


def test_merge_is_union_of_members():
    a = BloomSignature(256, 2)
    b = BloomSignature(256, 2)
    a_lines = list(range(0, 64 * 10, 64))
    b_lines = list(range(64 * 100, 64 * 112, 64))
    for line in a_lines:
        a.insert(line)
    for line in b_lines:
        b.insert(line)
    a.merge(b)
    for line in a_lines + b_lines:
        assert a.test(line)
    assert a.bits_set == a._word.bit_count()
    assert a.inserts == len(a_lines) + len(b_lines)
    # merge never mutates the source
    assert all(b.test(line) for line in b_lines)


def test_merge_with_empty_is_identity():
    sig = BloomSignature(256, 2)
    sig.insert(64)
    word_before = sig._word
    sig.merge(BloomSignature(256, 2))
    assert sig._word == word_before


def test_merge_rejects_mismatched_geometry():
    sig = BloomSignature(256, 2)
    with pytest.raises(ValueError):
        sig.merge(BloomSignature(128, 2))
    with pytest.raises(ValueError):
        sig.merge(BloomSignature(256, 3))


def test_hasher_mask_matches_indices():
    hasher = H3Hasher(256, 2)
    for key in range(0, 64 * 30, 64):
        expected = 0
        for index in hasher.indices(key):
            expected |= 1 << index
        assert hasher.mask(key) == expected
        assert hasher.mask(key) == expected  # memoized path agrees


def test_mask_fast_path_equals_index_reference():
    """One-OR insert / one-AND test decide identically to per-index
    bit twiddling."""
    sig = BloomSignature(512, 2)
    hasher = sig._hasher
    reference_word = 0
    keys = list(range(0, 64 * 25, 64))
    for key in keys:
        sig.insert(key)
        for index in hasher.indices(key):
            reference_word |= 1 << index
    assert sig._word == reference_word
    for probe in range(0, 64 * 200, 64):
        expected = all(reference_word >> i & 1
                       for i in hasher.indices(probe))
        assert sig.test(probe) == expected


def test_shared_hasher_is_memoized_per_geometry():
    assert shared_hasher(256, 2) is shared_hasher(256, 2)
    assert shared_hasher(256, 2) is not shared_hasher(128, 2)
    # Signatures with equal geometry share one hasher (and its caches).
    assert BloomSignature(256, 2)._hasher is BloomSignature(256, 2)._hasher
