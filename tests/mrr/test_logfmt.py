import pytest

from repro.errors import LogFormatError
from repro.mrr.chunk import ChunkEntry, Reason
from repro.mrr.logfmt import (
    ENTRY_BYTES,
    decode_chunks,
    encode_chunks,
    encoded_size,
)


def sample_entries():
    return [
        ChunkEntry(1, 10, 500, 0, 0, Reason.RAW),
        ChunkEntry(2, 11, 3, 4, 2, Reason.WAW),
        ChunkEntry(1, 12, 0, 0, 0, Reason.SYSCALL),
        ChunkEntry(3, 99, 70_000, 0, 1, Reason.SIZE),
    ]


def test_round_trip():
    entries = sample_entries()
    assert decode_chunks(encode_chunks(entries)) == entries


def test_round_trip_with_load_hash():
    entries = [ChunkEntry(1, 10, 5, 0, 0, Reason.RAW, load_hash=0xDEADBEEF)]
    decoded = decode_chunks(encode_chunks(entries, with_load_hash=True))
    assert decoded[0].load_hash == 0xDEADBEEF


def test_entry_is_16_bytes():
    assert ENTRY_BYTES == 16
    blob = encode_chunks(sample_entries())
    assert len(blob) == 12 + 4 * 16


def test_encoded_size_matches():
    entries = sample_entries()
    assert encoded_size(entries) == len(encode_chunks(entries))


def test_empty_stream():
    assert decode_chunks(encode_chunks([])) == []


def test_bad_magic_rejected():
    blob = bytearray(encode_chunks(sample_entries()))
    blob[0] = ord("X")
    with pytest.raises(LogFormatError):
        decode_chunks(bytes(blob))


def test_truncated_stream_rejected():
    blob = encode_chunks(sample_entries())
    with pytest.raises(LogFormatError):
        decode_chunks(blob[:-1])


def test_truncated_header_rejected():
    with pytest.raises(LogFormatError):
        decode_chunks(b"QR")


def test_rthread_width_enforced():
    with pytest.raises(LogFormatError):
        encode_chunks([ChunkEntry(300, 1, 1, 0, 0, Reason.RAW)])


def test_rsw_width_enforced():
    with pytest.raises(LogFormatError):
        encode_chunks([ChunkEntry(1, 1, 1, 0, 70_000, Reason.RAW)])


def test_unknown_reason_code_rejected():
    blob = bytearray(encode_chunks([ChunkEntry(1, 1, 1, 0, 0, Reason.RAW)]))
    blob[12 + 1] = 250  # reason byte of the first entry
    with pytest.raises(LogFormatError):
        decode_chunks(bytes(blob))
