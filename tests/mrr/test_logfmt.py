import pytest

from repro.errors import LogFormatError
from repro.mrr.chunk import ChunkEntry, Reason
from repro.mrr.logfmt import (
    ENTRY_BYTES,
    decode_chunks,
    encode_chunks,
    encoded_size,
)


def sample_entries():
    return [
        ChunkEntry(1, 10, 500, 0, 0, Reason.RAW),
        ChunkEntry(2, 11, 3, 4, 2, Reason.WAW),
        ChunkEntry(1, 12, 0, 0, 0, Reason.SYSCALL),
        ChunkEntry(3, 99, 70_000, 0, 1, Reason.SIZE),
    ]


def test_round_trip():
    entries = sample_entries()
    assert decode_chunks(encode_chunks(entries)) == entries


def test_round_trip_with_load_hash():
    entries = [ChunkEntry(1, 10, 5, 0, 0, Reason.RAW, load_hash=0xDEADBEEF)]
    decoded = decode_chunks(encode_chunks(entries, with_load_hash=True))
    assert decoded[0].load_hash == 0xDEADBEEF


def test_entry_is_16_bytes():
    assert ENTRY_BYTES == 16
    blob = encode_chunks(sample_entries())
    assert len(blob) == 12 + 4 * 16


def test_encoded_size_matches():
    entries = sample_entries()
    assert encoded_size(entries) == len(encode_chunks(entries))


def test_empty_stream():
    assert decode_chunks(encode_chunks([])) == []


def test_bad_magic_rejected():
    blob = bytearray(encode_chunks(sample_entries()))
    blob[0] = ord("X")
    with pytest.raises(LogFormatError):
        decode_chunks(bytes(blob))


def test_truncated_stream_rejected():
    blob = encode_chunks(sample_entries())
    with pytest.raises(LogFormatError):
        decode_chunks(blob[:-1])


def test_truncated_header_rejected():
    with pytest.raises(LogFormatError):
        decode_chunks(b"QR")


def test_rthread_width_enforced():
    with pytest.raises(LogFormatError):
        encode_chunks([ChunkEntry(300, 1, 1, 0, 0, Reason.RAW)])


def test_rsw_width_enforced():
    with pytest.raises(LogFormatError):
        encode_chunks([ChunkEntry(1, 1, 1, 0, 70_000, Reason.RAW)])


def test_unknown_reason_code_rejected():
    blob = bytearray(encode_chunks([ChunkEntry(1, 1, 1, 0, 0, Reason.RAW)]))
    blob[12 + 1] = 250  # reason byte of the first entry
    with pytest.raises(LogFormatError):
        decode_chunks(bytes(blob))


# -- v2 (columnar) format ----------------------------------------------------

def test_v2_round_trip_preserves_entry_order():
    entries = sample_entries()
    assert decode_chunks(encode_chunks(entries, version=2)) == entries


def test_v2_round_trip_with_load_hash():
    entries = [ChunkEntry(1, 10, 5, 0, 0, Reason.RAW, load_hash=0xDEADBEEF),
               ChunkEntry(2, 11, 7, 3, 1, Reason.WAW, load_hash=0x1234)]
    decoded = decode_chunks(encode_chunks(entries, with_load_hash=True,
                                          version=2))
    assert decoded == entries
    assert decoded[0].load_hash == 0xDEADBEEF


def test_v2_empty_stream():
    assert decode_chunks(encode_chunks([], version=2)) == []


def test_v2_smaller_than_v1_on_regular_logs():
    ts = 0
    entries = []
    for index in range(600):
        ts += 2 + index % 3
        entries.append(ChunkEntry(1 + index % 4, ts, 4000 + index % 9,
                                  1000 + index % 5, index % 2,
                                  Reason.ALL[index % len(Reason.ALL)]))
    v1 = len(encode_chunks(entries))
    v2 = len(encode_chunks(entries, version=2))
    assert v2 < v1 / 2


def test_v2_truncation_rejected_at_every_offset():
    blob = encode_chunks(sample_entries(), version=2)
    for cut in range(len(blob)):
        with pytest.raises(LogFormatError):
            decode_chunks(blob[:cut])


def test_v2_trailing_garbage_rejected():
    with pytest.raises(LogFormatError):
        decode_chunks(encode_chunks(sample_entries(), version=2) + b"\x00")


def test_unknown_version_rejected():
    with pytest.raises(LogFormatError):
        encode_chunks([], version=3)


def test_xor_obfuscation_chunked_matches_bigint():
    # the chunked memoryview XOR must agree with the reference definition
    from repro.mrr.logfmt import _XOR_BLOCK, _xor_bytes

    data = bytes(range(256)) * 600  # > 4 blocks
    key = bytes((i * 7 + 3) & 0xFF for i in range(len(data)))
    expected = bytes(a ^ b for a, b in zip(data, key))
    assert _xor_bytes(data, key) == expected
    # short key is zero-extended; empty inputs pass through
    assert _xor_bytes(data, key[:10])[10:] == data[10:]
    assert _xor_bytes(b"", key) == b""
    assert _xor_bytes(data[: _XOR_BLOCK + 1], key[: _XOR_BLOCK + 1]) == \
        expected[: _XOR_BLOCK + 1]
