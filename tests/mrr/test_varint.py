"""The shared capped-varint codec both log formats build on."""

import pytest

from repro.errors import LogFormatError
from repro.mrr.varint import (
    MAX_VARINT_BYTES,
    MAX_VARINT_VALUE,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)


@pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**64 - 1,
                                   MAX_VARINT_VALUE])
def test_round_trip(value):
    blob = write_varint(value)
    assert len(blob) <= MAX_VARINT_BYTES
    decoded, offset = read_varint(blob, 0)
    assert (decoded, offset) == (value, len(blob))


def test_negative_rejected():
    with pytest.raises(LogFormatError):
        write_varint(-1)


def test_too_large_rejected():
    with pytest.raises(LogFormatError):
        write_varint(MAX_VARINT_VALUE + 1)


def test_truncated_chain_rejected():
    with pytest.raises(LogFormatError):
        read_varint(b"\x80\x80", 0)


def test_unbounded_continuation_rejected():
    # the cap: 10 continuation bytes and still no terminator is an error,
    # not an invitation to walk the rest of the buffer
    with pytest.raises(LogFormatError):
        read_varint(b"\x80" * (MAX_VARINT_BYTES + 1) + b"\x01", 0)


def test_max_length_chain_accepted():
    blob = write_varint(MAX_VARINT_VALUE)
    assert len(blob) == MAX_VARINT_BYTES
    assert read_varint(blob, 0)[0] == MAX_VARINT_VALUE


@pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 2**63, -(2**63),
                                   2**64 - 1, -(2**64 - 1)])
def test_zigzag_round_trip(value):
    assert unzigzag(zigzag(value)) == value
    assert zigzag(value) >= 0
