"""Recorder behaviour on a real two-core machine (no kernel)."""

import pytest

from repro.config import MachineConfig, MRRConfig, StoreBufferConfig, TsoMode
from repro.errors import RecordingError
from repro.isa.assembler import assemble
from repro.machine.machine import Machine
from repro.mrr.chunk import Reason
from repro.mrr.recorder import MemoryRaceRecorder


def make_recorded_machine(source: str, mrr: MRRConfig | None = None,
                          sb: StoreBufferConfig | None = None):
    config = MachineConfig(num_cores=2, memory_bytes=1 << 16,
                           store_buffer=sb or StoreBufferConfig())
    machine = Machine(config)
    machine.load_program(assemble(source))
    logs: list = []
    recorders = []
    for core in machine.cores:
        recorder = MemoryRaceRecorder(mrr or MRRConfig(), core, logs.append)
        machine.attach_recorder(core.core_id, recorder)
        recorders.append(recorder)
    return machine, recorders, logs


TWO_THREAD = """
.data
v: .word 0
.text
main:
    mov r1, 5
    store [v], r1
    syscall
reader:
    load r2, [v]
    syscall
"""


def run_core(machine, core_id, steps):
    for _ in range(steps):
        machine.step_core(core_id)


def test_remote_read_of_written_line_terminates_raw():
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    run_core(machine, 0, 2)
    machine.cores[0].drain_all()  # write signature filled at drain
    machine.cores[1].engine.pc = machine.program.symbol("reader")
    run_core(machine, 1, 1)
    raw = [entry for entry in logs if entry.reason == Reason.RAW]
    assert len(raw) == 1
    assert raw[0].rthread == 1


def test_read_read_sharing_is_not_a_conflict():
    source = """
.data
v: .word 7
.text
main:
    load r1, [v]
    syscall
reader:
    load r2, [v]
    syscall
"""
    machine, recorders, logs = make_recorded_machine(source)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    run_core(machine, 0, 1)
    machine.cores[1].engine.pc = machine.program.symbol("reader")
    run_core(machine, 1, 1)
    assert not logs


def test_remote_write_over_read_terminates_war():
    source = """
.data
v: .word 7
.text
main:
    load r1, [v]
    syscall
writer:
    mov r2, 9
    store [v], r2
    syscall
"""
    machine, recorders, logs = make_recorded_machine(source)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    run_core(machine, 0, 1)
    machine.cores[1].engine.pc = machine.program.symbol("writer")
    run_core(machine, 1, 2)
    machine.cores[1].drain_all()   # drain issues the invalidating txn
    war = [entry for entry in logs if entry.reason == Reason.WAR]
    assert len(war) == 1 and war[0].rthread == 1


def test_waw_conflict():
    source = """
.data
v: .word 0
.text
main:
    mov r1, 1
    store [v], r1
    syscall
writer:
    mov r2, 2
    store [v], r2
    syscall
"""
    machine, recorders, logs = make_recorded_machine(source)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    run_core(machine, 0, 2)
    machine.cores[0].drain_all()
    machine.cores[1].engine.pc = machine.program.symbol("writer")
    run_core(machine, 1, 2)
    machine.cores[1].drain_all()
    waw = [entry for entry in logs if entry.reason == Reason.WAW]
    assert len(waw) == 1 and waw[0].rthread == 1


def test_timestamps_strictly_increase_globally():
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    ts1 = recorders[0].terminate(Reason.PREEMPT)
    ts2 = recorders[1].terminate(Reason.PREEMPT)
    ts3 = recorders[0].terminate(Reason.PREEMPT)
    assert ts1 < ts2 < ts3


def test_victim_timestamp_precedes_requester_chunk():
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    run_core(machine, 0, 2)
    machine.cores[0].drain_all()
    machine.cores[1].engine.pc = machine.program.symbol("reader")
    run_core(machine, 1, 1)          # terminates rthread 1's chunk
    ts_reader = recorders[1].terminate(Reason.PREEMPT)
    assert logs[0].timestamp < ts_reader


def test_size_cap_terminates_chunk():
    source = ".text\nmain:\n    nop\n    jmp main\n"
    machine, recorders, logs = make_recorded_machine(
        source, mrr=MRRConfig(max_chunk_instructions=10))
    recorders[0].set_thread(1)
    run_core(machine, 0, 25)
    size_chunks = [entry for entry in logs if entry.reason == Reason.SIZE]
    assert len(size_chunks) == 2
    assert all(entry.icount == 10 for entry in size_chunks)


def test_saturation_terminates_chunk():
    # Touch many distinct lines with a tiny signature.
    lines = 64
    source = (".data\narr: .space 8192\n.text\nmain:\n"
              "    mov r1, 0\nloop:\n"
              "    shl r2, r1, 6\n"
              "    load r3, [arr + r2]\n"
              "    add r1, r1, 1\n"
              "    cmp r1, 64\n"
              "    jne loop\n    syscall\n")
    machine, recorders, logs = make_recorded_machine(
        source, mrr=MRRConfig(signature_bits=64, saturation_threshold=0.5))
    recorders[0].set_thread(1)
    run_core(machine, 0, 64 * 5)
    assert any(entry.reason == Reason.SATURATION for entry in logs)


def test_rsw_counts_pending_stores():
    machine, recorders, logs = make_recorded_machine(
        TWO_THREAD, sb=StoreBufferConfig(entries=8, drain_period=100_000))
    recorders[0].set_thread(1)
    run_core(machine, 0, 2)          # store still buffered
    recorders[0].terminate(Reason.SIZE)
    assert logs[-1].rsw == 1


def test_drain_tso_mode_flushes_before_logging():
    machine, recorders, logs = make_recorded_machine(
        TWO_THREAD, mrr=MRRConfig(tso_mode=TsoMode.DRAIN),
        sb=StoreBufferConfig(entries=8, drain_period=100_000))
    recorders[0].set_thread(1)
    run_core(machine, 0, 2)
    recorders[0].terminate(Reason.SIZE)
    assert logs[-1].rsw == 0
    assert machine.cores[0].store_buffer.empty


def test_mid_instruction_memops_logged():
    source = """
.data
src: .space 64
dst: .space 64
.text
main:
    mov rcx, 8
    mov rsi, src
    mov rdi, dst
    rep_movs
    syscall
"""
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    machine.load_program(assemble(source))
    for core in machine.cores:
        core.set_program(machine.program)
    recorders[0].set_thread(1)
    run_core(machine, 0, 3 + 3)      # 3 movs + 3 iterations of 8
    recorders[0].terminate(Reason.PREEMPT)
    assert logs[-1].memops == 6      # 3 iterations x (load + store)
    assert logs[-1].icount == 3      # rep_movs itself not yet retired


def test_inactive_recorder_ignores_snoops():
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    # no set_thread anywhere
    assert recorders[0].snoop(0, True) is None
    with pytest.raises(RecordingError):
        recorders[0].terminate(Reason.SIZE)


def test_set_thread_twice_rejected():
    machine, recorders, _logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    with pytest.raises(RecordingError):
        recorders[0].set_thread(2)


def test_clear_thread_resets_signatures():
    machine, recorders, _logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    recorders[0].on_load(0)
    recorders[0].clear_thread()
    assert recorders[0].read_sig.empty
    assert not recorders[0].active


def test_kernel_copy_joins_write_set():
    machine, recorders, logs = make_recorded_machine(TWO_THREAD)
    recorders[0].set_thread(1)
    recorders[1].set_thread(2)
    addr = machine.program.symbol("v")
    machine.coherent_copy(machine.cores[0], addr, b"\x01\x02\x03\x04")
    # reader on core 1 must now conflict with rthread 1's write set
    machine.cores[1].engine.pc = machine.program.symbol("reader")
    run_core(machine, 1, 1)
    assert any(entry.reason == Reason.RAW and entry.rthread == 1
               for entry in logs)
