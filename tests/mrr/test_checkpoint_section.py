"""The QRCK checkpoint section: delta encoding, digests, corruption."""

import hashlib
import struct

import pytest

from repro.errors import LogFormatError
from repro.mrr.logfmt import (
    CheckpointRecord,
    _xor_bytes,
    decode_checkpoints,
    encode_checkpoints,
)


def record(position, payload):
    return CheckpointRecord.for_payload(position, payload)


def test_for_payload_computes_sha256():
    rec = record(5, b"hello")
    assert rec.digest == hashlib.sha256(b"hello").hexdigest()


def test_empty_section_round_trips():
    assert decode_checkpoints(encode_checkpoints([])) == []


def test_round_trip_preserves_records():
    records = [record(10, b"a" * 100), record(20, b"a" * 90 + b"b" * 10),
               record(30, b"c" * 120)]
    assert decode_checkpoints(encode_checkpoints(records)) == records


def test_encode_sorts_by_position():
    records = [record(30, b"x"), record(10, b"y"), record(20, b"z")]
    decoded = decode_checkpoints(encode_checkpoints(records))
    assert [r.position for r in decoded] == [10, 20, 30]


def test_delta_encoding_shrinks_similar_payloads():
    # 64 KiB of sha256-chained bytes: incompressible on its own, so any
    # saving on the second record must come from the XOR delta
    blocks, seed = [], b"seed"
    for _ in range(2048):
        seed = hashlib.sha256(seed).digest()
        blocks.append(seed)
    base = b"".join(blocks)
    nearly = base[:-1] + b"\x00"
    single = len(encode_checkpoints([record(1, base)]))
    double = len(encode_checkpoints([record(1, base), record(2, nearly)]))
    # the second (delta) record should cost almost nothing on top
    assert double - single < single / 10


def test_xor_bytes_handles_length_drift():
    assert _xor_bytes(b"\x0f\x0f", b"\x0f") == b"\x00\x0f"
    assert _xor_bytes(b"\x0f", b"\x0f\x0f") == b"\x00"
    assert _xor_bytes(b"", b"abc") == b""
    assert _xor_bytes(b"abc", b"") == b"abc"


def test_truncated_header_rejected():
    with pytest.raises(LogFormatError):
        decode_checkpoints(b"QRC")


def test_bad_magic_rejected():
    blob = bytearray(encode_checkpoints([record(1, b"x")]))
    blob[:4] = b"NOPE"
    with pytest.raises(LogFormatError):
        decode_checkpoints(bytes(blob))


def test_truncated_payload_rejected():
    blob = encode_checkpoints([record(1, b"x" * 500)])
    with pytest.raises(LogFormatError):
        decode_checkpoints(blob[:-3])


def test_trailing_bytes_rejected():
    blob = encode_checkpoints([record(1, b"x")])
    with pytest.raises(LogFormatError):
        decode_checkpoints(blob + b"junk")


def test_corrupt_payload_fails_digest_check():
    blob = bytearray(encode_checkpoints([record(1, b"w" * 1000)]))
    # flip a bit inside the stored digest so the payload no longer matches
    header = struct.calcsize("<4sBBHI")
    digest_offset = header + struct.calcsize("<IIIB")
    blob[digest_offset] ^= 0xFF
    with pytest.raises(LogFormatError, match="digest mismatch"):
        decode_checkpoints(bytes(blob))
