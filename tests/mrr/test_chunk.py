import pytest

from repro.mrr.chunk import ChunkEntry, Reason


def test_reason_tables_consistent():
    assert set(Reason.CODES) == set(Reason.ALL)
    for name, code in Reason.CODES.items():
        assert Reason.NAMES[code] == name


def test_conflicts_subset_of_hardware():
    assert set(Reason.CONFLICTS) <= set(Reason.HARDWARE)
    assert not set(Reason.KERNEL_ENTRY) & set(Reason.HARDWARE)


def test_entry_is_conflict():
    entry = ChunkEntry(1, 10, 5, 0, 0, Reason.RAW)
    assert entry.is_conflict
    assert not ChunkEntry(1, 10, 5, 0, 0, Reason.SYSCALL).is_conflict


def test_sort_key_orders_by_timestamp_then_thread():
    a = ChunkEntry(2, 10, 5, 0, 0, Reason.RAW)
    b = ChunkEntry(1, 11, 5, 0, 0, Reason.RAW)
    c = ChunkEntry(1, 10, 5, 0, 0, Reason.RAW)
    assert sorted([a, b, c], key=lambda e: e.sort_key) == [c, a, b]


def test_unknown_reason_rejected():
    with pytest.raises(ValueError):
        ChunkEntry(1, 10, 5, 0, 0, "coffee")


def test_negative_fields_rejected():
    with pytest.raises(ValueError):
        ChunkEntry(1, -1, 5, 0, 0, Reason.RAW)
    with pytest.raises(ValueError):
        ChunkEntry(1, 1, 5, 0, -2, Reason.RAW)
