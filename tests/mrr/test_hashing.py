import pytest

from repro.mrr.hashing import H3Hasher, shared_hasher


def test_indices_in_range():
    hasher = H3Hasher(buckets=64, num_hashes=3)
    for key in (0, 1, 0xFFFFFFFF, 0x12345678):
        for index in hasher.indices(key):
            assert 0 <= index < 64


def test_deterministic_across_instances():
    a = H3Hasher(64, 2, seed=42)
    b = H3Hasher(64, 2, seed=42)
    for key in range(0, 4096, 64):
        assert a.indices(key) == b.indices(key)


def test_different_seeds_differ():
    a = H3Hasher(1024, 2, seed=1)
    b = H3Hasher(1024, 2, seed=2)
    assert any(a.indices(k) != b.indices(k) for k in range(0, 64 * 64, 64))


def test_zero_key_hashes_to_zero_masks():
    # H3 of 0 XORs nothing: always index 0 for every function.
    hasher = H3Hasher(64, 4)
    assert hasher.indices(0) == (0, 0, 0, 0)


def test_linearity_property():
    # H3 is XOR-linear: h(a ^ b) == h(a) ^ h(b)
    hasher = H3Hasher(256, 2)
    for a, b in ((0x40, 0x80), (0x1234, 0xABCD), (1, 2)):
        combined = hasher.indices(a ^ b)
        expected = tuple(x ^ y for x, y in zip(hasher.indices(a),
                                               hasher.indices(b)))
        assert combined == expected


def test_memoization_returns_same_tuple():
    hasher = H3Hasher(64, 2)
    assert hasher.indices(0x40) is hasher.indices(0x40)


def test_shared_hasher_reuses_instances():
    assert shared_hasher(128, 2) is shared_hasher(128, 2)
    assert shared_hasher(128, 2) is not shared_hasher(256, 2)


def test_validation():
    with pytest.raises(ValueError):
        H3Hasher(100, 2)  # not a power of two
    with pytest.raises(ValueError):
        H3Hasher(64, 0)
    with pytest.raises(ValueError):
        H3Hasher(64, 9)


def test_distribution_not_degenerate():
    hasher = H3Hasher(64, 1)
    seen = {hasher.indices(line)[0] for line in range(0, 64 * 256, 64)}
    # 256 distinct lines should hit a healthy spread of 64 buckets.
    assert len(seen) > 32
