import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogFormatError
from repro.mrr.chunk import ChunkEntry, Reason
from repro.mrr.compression import (
    compress_chunks,
    compressed_size,
    decompress_chunks,
)
from repro.mrr.logfmt import encode_chunks


def make_log(threads=3, per_thread=50):
    entries = []
    ts = 0
    for index in range(threads * per_thread):
        ts += 1 + (index % 3)
        entries.append(ChunkEntry(
            rthread=1 + index % threads,
            timestamp=ts,
            icount=100 + index % 7,
            memops=0,
            rsw=index % 2,
            reason=Reason.ALL[index % len(Reason.ALL)],
        ))
    return entries


def test_round_trip_equals_sorted_original():
    entries = make_log()
    decoded = decompress_chunks(compress_chunks(entries))
    assert decoded == sorted(entries, key=lambda e: e.sort_key)


def test_round_trip_without_zlib():
    entries = make_log()
    blob = compress_chunks(entries, use_zlib=False)
    assert decompress_chunks(blob) == sorted(entries, key=lambda e: e.sort_key)


def test_compression_beats_raw_format():
    entries = make_log(threads=4, per_thread=200)
    raw = len(encode_chunks(entries))
    compressed = compressed_size(entries)
    assert compressed < raw / 3


def test_empty_log():
    assert decompress_chunks(compress_chunks([])) == []


def test_bad_magic_rejected():
    with pytest.raises(LogFormatError):
        decompress_chunks(b"XXXX\x00")


def test_out_of_order_stream_entries_handled():
    # CBUF drain order can interleave a migrating thread's entries; the
    # compressor must reorder per-thread streams by timestamp.
    entries = [
        ChunkEntry(1, 10, 1, 0, 0, Reason.RAW),
        ChunkEntry(1, 5, 1, 0, 0, Reason.EXIT),
    ]
    decoded = decompress_chunks(compress_chunks(entries))
    assert [entry.timestamp for entry in decoded] == [5, 10]


def test_large_values_round_trip():
    entries = [ChunkEntry(1, 2**31, 2**30, 1000, 60_000, Reason.SIZE)]
    assert decompress_chunks(compress_chunks(entries)) == entries


# -- robustness: truncation and corruption must surface as LogFormatError ----

def test_truncated_header_raises_logformat_not_indexerror():
    # The verified bug: a blob cut right after the magic used to raise a
    # bare IndexError reading the flags byte.
    with pytest.raises(LogFormatError):
        decompress_chunks(compress_chunks([])[:4])


def test_corrupt_zlib_payload_raises_logformat_not_zlib_error():
    blob = bytearray(compress_chunks(make_log()))
    blob[10] ^= 0xFF
    with pytest.raises(LogFormatError):
        decompress_chunks(bytes(blob))


@pytest.mark.parametrize("use_zlib", [True, False])
def test_every_truncation_offset_raises_logformat(use_zlib):
    blob = compress_chunks(make_log(threads=2, per_thread=6),
                           use_zlib=use_zlib)
    for cut in range(len(blob)):
        with pytest.raises(LogFormatError):
            decompress_chunks(blob[:cut])


@settings(max_examples=200, deadline=None)
@given(data=st.data(), use_zlib=st.booleans())
def test_corrupted_byte_never_escapes_logformat(data, use_zlib):
    # Flipping any single byte of a valid blob must either still decode
    # (the corruption landed in a value) or raise LogFormatError — never a
    # raw IndexError/zlib.error/ValueError.
    blob = bytearray(compress_chunks(make_log(threads=2, per_thread=4),
                                     use_zlib=use_zlib))
    position = data.draw(st.integers(0, len(blob) - 1))
    replacement = data.draw(
        st.integers(0, 255).filter(lambda b: b != blob[position]))
    blob[position] = replacement
    try:
        decompress_chunks(bytes(blob))
    except LogFormatError:
        pass


# -- v2 (columnar) layout ----------------------------------------------------

def test_v2_round_trip_equals_sorted_original():
    entries = make_log()
    decoded = decompress_chunks(compress_chunks(entries, version=2))
    assert decoded == sorted(entries, key=lambda e: e.sort_key)


@pytest.mark.parametrize("use_zlib", [True, False])
def test_v2_round_trip_both_zlib_modes(use_zlib):
    entries = make_log(threads=2, per_thread=8)
    blob = compress_chunks(entries, use_zlib=use_zlib, version=2)
    assert decompress_chunks(blob) == sorted(entries,
                                             key=lambda e: e.sort_key)


def test_v2_not_larger_than_v1():
    entries = make_log(threads=4, per_thread=200)
    assert compressed_size(entries, version=2) <= compressed_size(entries)


def test_v2_empty_log():
    assert decompress_chunks(compress_chunks([], version=2)) == []


def test_v2_unknown_version_rejected():
    with pytest.raises(LogFormatError):
        compress_chunks([], version=3)


@pytest.mark.parametrize("use_zlib", [True, False])
def test_v2_every_truncation_offset_raises_logformat(use_zlib):
    blob = compress_chunks(make_log(threads=2, per_thread=6),
                           use_zlib=use_zlib, version=2)
    for cut in range(len(blob)):
        with pytest.raises(LogFormatError):
            decompress_chunks(blob[:cut])


def test_unbounded_varint_rejected():
    # regression: a 0x80 run must fail fast at MAX_VARINT_BYTES, not walk
    # the whole payload
    with pytest.raises(LogFormatError):
        decompress_chunks(b"QRCZ\x00" + b"\x80" * 64 + b"\x01")
