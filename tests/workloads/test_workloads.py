"""Workload correctness: every workload's checksum is validated against an
independent Python reference model, under several interleavings. This is
differential testing of the whole machine (ISA, TSO, coherence, kernel)
against straight-line Python."""

import pytest

from repro import session, workloads
from repro.workloads import data

MASK = 0xFFFFFFFF


def run_checksum(name, threads=None, scale=1, seed=0, policy="random"):
    program, inputs = workloads.build(name, threads=threads, scale=scale)
    outcome = session.simulate(program, seed=seed, policy=policy,
                               input_files=inputs)
    out = outcome.outputs["stdout"]
    return int.from_bytes(out[0:4], "little"), outcome


def signed(x):
    return x - (1 << 32) if x & 0x80000000 else x


# -- closed-form references ----------------------------------------------------

def test_counter_total_exact():
    checksum, _ = run_checksum("counter", threads=4)
    assert checksum == 4 * 300


def test_counter_scales_with_threads_and_scale():
    checksum, _ = run_checksum("counter", threads=3, scale=2)
    assert checksum == 3 * 600


def test_locks_critical_section_exact():
    checksum, _ = run_checksum("locks", threads=4)
    assert checksum == 4 * 100


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dekker_mutual_exclusion(seed):
    # If Peterson ever fails, increments are lost and the count drops.
    checksum, _ = run_checksum("dekker", seed=seed)
    assert checksum == 2 * 150


def test_pingpong_per_slot_increments():
    checksum, _ = run_checksum("pingpong", threads=4)
    assert checksum == 4 * 400


def test_prodcons_consumes_every_item_exactly_once():
    threads = 3
    total = 120 * (threads - 1)
    checksum, _ = run_checksum("prodcons", threads=threads)
    assert checksum == sum(range(total)) & MASK


def test_sigping_all_signals_delivered():
    checksum, _ = run_checksum("sigping")
    assert checksum == 20


def test_iobound_sums_input_files():
    threads = 2
    checksum, _ = run_checksum("iobound", threads=threads)
    expected = 0
    for tid in range(threads):
        expected += sum(data.words(seed=100 + tid, count=512, modulus=1000))
    assert checksum == expected & MASK


# -- reference-model checks -------------------------------------------------------

def test_fft_matches_reference_butterfly():
    n = 256
    x = data.words(seed=11, count=n, modulus=1 << 16)
    for stage in range(n.bit_length() - 1):
        stride = 1 << stage
        for i in range(n):
            if i & stride:
                continue
            a, b = x[i], x[i + stride]
            x[i] = (a + b) & MASK
            x[i + stride] = (a - b) & MASK
    expected = sum(x) & MASK
    checksum, _ = run_checksum("fft", threads=4)
    assert checksum == expected


def test_radix_sorts_keys():
    n = 256
    keys = sorted(data.words(seed=31, count=n, modulus=1 << 16))
    expected = sum(key * (i + 1) for i, key in enumerate(keys)) & MASK
    checksum, _ = run_checksum("radix", threads=4)
    assert checksum == expected


def test_radix_other_thread_counts():
    n = 256
    keys = sorted(data.words(seed=31, count=n, modulus=1 << 16))
    expected = sum(key * (i + 1) for i, key in enumerate(keys)) & MASK
    for threads in (1, 2):
        checksum, _ = run_checksum("radix", threads=threads)
        assert checksum == expected


def test_lu_matches_reference_elimination():
    n = 20
    a = data.words(seed=23, count=n * n, modulus=10_000)
    for k in range(n - 1):
        pivot = a[k * n + k] | 1
        for row in range(k + 1, n):
            factor = a[row * n + k] // pivot
            for col in range(k, n):
                product = (factor * a[k * n + col]) & MASK
                a[row * n + col] = (a[row * n + col] - product) & MASK
    expected = sum(a[::3]) & MASK  # checksum strides by 3 words
    checksum, _ = run_checksum("lu", threads=4)
    assert checksum == expected


def test_ocean_matches_reference_stencil():
    grid, sweeps = 18, 3
    g = data.words(seed=41, count=grid * grid, modulus=4096)
    for half in range(2 * sweeps):
        color = half & 1
        for row in range(1, grid - 1):
            for col in range(1, grid - 1):
                if (row + col) & 1 != color:
                    continue
                idx = row * grid + col
                total = (g[idx - grid] + g[idx + grid]
                         + g[idx - 1] + g[idx + 1]) & MASK
                g[idx] = total >> 2
    expected = sum(g[::5]) & MASK
    checksum, _ = run_checksum("ocean", threads=4)
    assert checksum == expected


def test_barnes_matches_reference_nbody():
    particles, iters = 64, 2
    pos = data.words(seed=51, count=particles, modulus=1 << 20)
    for _ in range(iters):
        force = []
        for i in range(particles):
            acc = 0
            for j in range(particles):
                acc = (acc + (signed((pos[j] - pos[i]) & MASK) >> 6)) & MASK
            force.append(acc)
        for i in range(particles):
            pos[i] = (pos[i] + force[i]) & ((1 << 20) - 1)
    expected = sum(pos) & MASK
    checksum, _ = run_checksum("barnes", threads=4)
    assert checksum == expected


def test_water_matches_reference_pairwise():
    molecules = 36
    wpos = data.words(seed=61, count=molecules, modulus=1 << 16)
    force = [0] * molecules
    for i in range(molecules):
        for j in range(i + 1, molecules):
            interaction = ((wpos[i] ^ wpos[j]) & MASK) >> 8
            force[i] = (force[i] + interaction) & MASK
            force[j] = (force[j] - interaction) & MASK
    expected = sum(force) & MASK
    checksum, _ = run_checksum("water", threads=4)
    assert checksum == expected


def test_fmm_matches_reference_tree():
    leaves = 64
    bodies = data.words(seed=71, count=96 * 4, modulus=1 << 24)
    tree = [0] * (2 * leaves)
    for body in bodies:
        leaf = body & (leaves - 1)
        tree[leaves + leaf] = (tree[leaves + leaf] + (body >> 8)) & MASK
    width = leaves // 2
    while width:
        for node in range(width, 2 * width):
            tree[node] = (tree[2 * node] + tree[2 * node + 1]) & MASK
        width //= 2
    expected = sum(tree) & MASK
    checksum, _ = run_checksum("fmm", threads=4)
    assert checksum == expected


def test_raytrace_matches_reference_escape_iteration():
    side = 16
    image = []
    for pixel in range(side * side):
        cx = ((pixel % side) - side // 2) << 5
        cy = ((pixel // side) - side // 2) << 5
        cx &= MASK
        cy &= MASK
        zx = zy = 0
        iters = 0
        while iters < 24:
            zx2 = (zx * zx) & MASK
            zy2 = (zy * zy) & MASK
            new_zx = ((signed((zx2 - zy2) & MASK) >> 8) + cx) & MASK
            cross = (zx * zy) & MASK
            zy = ((signed(cross) >> 7) + cy) & MASK
            zx = new_zx
            mag = ((zx * zx) & MASK) + ((zy * zy) & MASK)
            mag &= MASK
            if mag > (4 << 16):
                break
            iters += 1
        image.append(iters)
    expected = sum(image[::3]) & MASK
    program, inputs = workloads.build("raytrace", threads=4)
    outcome = session.simulate(program, input_files=inputs)
    out = outcome.outputs["stdout"]
    # stdout carries progress words first; the checksum pair is last
    checksum = int.from_bytes(out[-8:-4], "little")
    assert checksum == expected


# -- schedule independence of race-free workloads ------------------------------

@pytest.mark.parametrize("name", ["fft", "ocean", "barnes", "lu"])
def test_barrier_workloads_schedule_independent(name):
    program, inputs = workloads.build(name)
    digests = set()
    for seed, policy in ((0, "random"), (5, "bursty"), (0, "rr")):
        outcome = session.simulate(program, seed=seed, policy=policy,
                                   input_files=inputs)
        digests.add(outcome.outputs["stdout"])
    assert len(digests) == 1


# -- registry behaviour ------------------------------------------------------------

def test_registry_contents():
    assert len(workloads.splash_names()) == 10
    assert len(workloads.micro_names()) == 10
    assert set(workloads.all_names()) == set(workloads.splash_names()
                                             + workloads.micro_names())


def test_unknown_workload_rejected():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        workloads.build("quake")


def test_bad_parameters_rejected():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError):
        workloads.get("counter").build(threads=0)
    with pytest.raises(WorkloadError):
        workloads.get("counter").build(scale=0)


def test_duplicate_registration_rejected():
    from repro.errors import WorkloadError
    from repro.workloads.base import Workload, register

    with pytest.raises(WorkloadError):
        register(Workload("counter", "dup", "micro",
                          lambda t, s: (None, {})))


def test_cholesky_matches_reference_pipeline():
    n = 16
    a = data.words(seed=81, count=n * n, modulus=10_000)
    for j in range(n):
        for k in range(j):
            factor = a[k * n + j] | 1
            for i in range(j, n):
                quotient = a[i * n + k] // factor
                a[i * n + j] = (a[i * n + j] - quotient) & MASK
    expected = sum(a[::3]) & MASK
    checksum, _ = run_checksum("cholesky", threads=4)
    assert checksum == expected


def test_cholesky_schedule_independent():
    program, inputs = workloads.build("cholesky")
    digests = {session.simulate(program, seed=seed, policy=policy,
                                input_files=inputs).outputs["stdout"]
               for seed, policy in ((0, "random"), (3, "bursty"),
                                    (0, "rr"))}
    assert len(digests) == 1


def test_radiosity_processes_every_task_exactly_once():
    threads, per_thread = 4, 48
    total = threads * per_thread
    expected = 0
    for task in range(total):
        value = (task * 2654435761) & MASK
        expected += ((value >> 8) ^ task) & 0xFFFF
    for seed in (0, 5):
        checksum, _ = run_checksum("radiosity", threads=threads, seed=seed)
        assert checksum == expected & MASK


def test_radiosity_steals_across_threads():
    # an uneven thread count forces cross-deque traffic; the sum is still
    # exact, proving no task is lost or duplicated by racing steals
    threads, per_thread = 3, 48
    total = threads * per_thread
    expected = sum((((t * 2654435761) & MASK) >> 8 ^ t) & 0xFFFF
                   for t in range(total)) & MASK
    checksum, _ = run_checksum("radiosity", threads=threads)
    assert checksum == expected
