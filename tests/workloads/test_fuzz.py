"""The fuzz-campaign library itself."""

import random

import pytest

from repro.workloads.fuzz import (
    FuzzReport,
    build_program,
    emit_ops,
    fuzz_many,
    fuzz_once,
    generate_case,
    random_config,
    random_ops,
)


def test_random_ops_deterministic_per_seed():
    assert random_ops(random.Random(5)) == random_ops(random.Random(5))
    assert random_ops(random.Random(5)) != random_ops(random.Random(6))


def test_random_ops_within_bounds():
    ops = random_ops(random.Random(1), max_ops=30)
    assert 1 <= len(ops) <= 30
    for op in ops:
        assert isinstance(op, tuple) and op


def test_emit_rejects_unknown_op():
    from repro.isa.builder import KernelBuilder

    with pytest.raises(AssertionError):
        emit_ops(KernelBuilder(), [("teleport",)])


def test_build_program_assembles_all_generated_ops():
    rng = random.Random(3)
    for _ in range(10):
        threads_ops = [random_ops(rng) for _ in range(rng.randint(2, 3))]
        program = build_program(threads_ops, repeats=2)
        assert len(program) > 0


def test_random_config_valid():
    for seed in range(10):
        config = random_config(random.Random(seed))
        assert 1 <= config.machine.num_cores <= 4


def test_generate_case_is_deterministic_and_buildable():
    case = generate_case(77)
    assert case == generate_case(77)
    assert case != generate_case(78)
    assert 2 <= len(case.threads_ops) <= 3
    assert case.op_count() == sum(len(ops) for ops in case.threads_ops)
    assert len(case.build()) > 0


def test_fuzz_once_verifies():
    ok, detail = fuzz_once(seed=77)
    assert ok, detail


def test_fuzz_once_failure_detail_has_traceback(monkeypatch):
    from repro.workloads import fuzz as fuzz_mod

    def boom(*args, **kwargs):
        raise RuntimeError("injected crash")

    monkeypatch.setattr(fuzz_mod.session, "record_and_replay", boom)
    ok, detail = fuzz_once(seed=1)
    assert not ok
    assert detail.startswith("RuntimeError: injected crash")
    assert "Traceback (most recent call last)" in detail


def test_fuzz_many_counts():
    report = fuzz_many(5, base_seed=500)
    assert isinstance(report, FuzzReport)
    assert report.runs == 5
    assert report.verified == 5
    assert report.ok


def test_fuzz_campaign_across_seeds():
    report = fuzz_many(12, base_seed=9000)
    assert report.ok, report.failures
