"""The shadow-replay race detector, against workloads with known answers."""

import pytest

from repro import session, workloads
from repro.forensics import analyze_recording, detect_races


def _record(name, seed=11, threads=None, scale=1):
    program, inputs = workloads.build(name, threads=threads, scale=scale)
    return session.record(program, seed=seed, input_files=inputs).recording


@pytest.fixture(scope="module")
def racer_recording():
    return _record("racer")


def _keys(report):
    return {(race.word, race.first.chunk_index, race.second.chunk_index)
            for race in report.races}


def test_racer_reports_only_the_seeded_race(racer_recording):
    report = detect_races(racer_recording)
    assert report.races, "the seeded race must be found"
    racy = racer_recording.program.symbol("racy")
    assert set(report.racy_words) == {racy}
    for race in report.races:
        assert race.symbol == "racy"
        assert {race.first.rthread, race.second.rthread} == {1, 2}
        # The repro coordinates are real schedule positions, in order.
        assert 0 <= race.first.chunk_index < race.second.chunk_index
        assert race.second.chunk_index < report.total_chunks


def test_racer_lock_and_guarded_words_are_clean(racer_recording):
    report = detect_races(racer_recording, max_races_per_address=10**9)
    program = racer_recording.program
    assert program.symbol("rlock") in report.sync_words
    racy_words = set(report.racy_words)
    assert program.symbol("guarded") not in racy_words
    assert program.symbol("rlock") not in racy_words


def test_races_are_hb_concurrent(racer_recording):
    report, graph = analyze_recording(racer_recording)
    for race in report.races:
        assert graph.concurrent(race.first.chunk_index,
                                race.second.chunk_index)
    assert report.hb["nodes"] == report.total_chunks


def test_properly_synchronized_workloads_are_race_free():
    for name in ("locks", "counter"):
        report = detect_races(_record(name, threads=2))
        assert not report.races, f"{name} must be race-free"
        assert not report.dropped_races


def test_dekker_plain_flag_protocol_is_reported():
    # Peterson with plain loads/stores is a data race at this level
    # (exactly as a C11 analysis would classify it).
    report = detect_races(_record("dekker"))
    symbols = {race.symbol.split("+")[0] for race in report.races}
    assert "flag" in symbols or "turn" in symbols


def test_detection_is_deterministic(racer_recording):
    first = detect_races(racer_recording)
    second = detect_races(racer_recording)
    assert _keys(first) == _keys(second)
    assert first.as_dict() == second.as_dict()


def test_windowed_analysis_matches_restricted_full(racer_recording):
    session.add_checkpoints(racer_recording, every=8)
    full = detect_races(racer_recording, max_races_per_address=10**9)
    lo, hi = 40, 120
    windowed = detect_races(racer_recording, start=lo, until=hi,
                            max_races_per_address=10**9)
    assert windowed.window == (lo, hi)
    restricted = {key for key in _keys(full)
                  if lo <= key[1] < hi and lo <= key[2] < hi}
    assert _keys(windowed) == restricted
    assert restricted, "the window must contain some of the seeded races"


def test_window_bounds_are_clamped(racer_recording):
    report = detect_races(racer_recording, start=0,
                          until=10**9)
    assert report.window == (0, report.total_chunks)


def test_per_word_cap_reports_drops(racer_recording):
    capped = detect_races(racer_recording, max_races_per_address=2)
    uncapped = detect_races(racer_recording, max_races_per_address=10**9)
    assert len(capped.races) == 2
    assert capped.dropped_races == len(uncapped.races) - 2


def test_report_round_trips_through_json(racer_recording):
    import json

    payload = json.loads(json.dumps(detect_races(racer_recording).as_dict()))
    assert payload["format"] == "quickrec-race-report"
    assert payload["races"]
    first = payload["races"][0]
    assert {"address", "word", "symbol", "first", "second"} <= set(first)
    assert {"chunk_index", "rthread", "pc", "kind",
            "timestamp"} <= set(first["first"])
