"""Chrome trace-event export of the schedule and the races."""

import pytest

from repro import session, workloads
from repro.forensics import analyze_recording, export_trace
from repro.telemetry.tracer import validate_trace


@pytest.fixture(scope="module")
def analyzed():
    program, _ = workloads.build("racer")
    recording = session.record(program, seed=11).recording
    report, graph = analyze_recording(recording)
    return recording, report, graph


def test_trace_validates(analyzed):
    recording, report, graph = analyzed
    tracer = export_trace(recording, report=report, graph=graph)
    assert validate_trace(tracer.export()) == []


def test_one_span_per_chunk_plus_thread_names(analyzed):
    recording, _report, _graph = analyzed
    tracer = export_trace(recording)
    spans = [e for e in tracer.events if e["ph"] == "X"]
    assert len(spans) == len(recording.chunks)
    names = {e["tid"] for e in tracer.events
             if e.get("cat") == "__metadata"}
    assert names == {chunk.rthread for chunk in recording.chunks}


def test_spans_do_not_overlap_per_thread(analyzed):
    recording, _report, _graph = analyzed
    tracer = export_trace(recording)
    by_tid = {}
    for event in tracer.events:
        if event["ph"] == "X":
            by_tid.setdefault(event["tid"], []).append(
                (event["ts"], event["dur"]))
    for intervals in by_tid.values():
        intervals.sort()
        for (ts_a, dur_a), (ts_b, _dur_b) in zip(intervals, intervals[1:]):
            assert ts_a + dur_a <= ts_b


def test_race_markers_land_on_both_threads(analyzed):
    recording, report, graph = analyzed
    assert report.races
    tracer = export_trace(recording, report=report, graph=graph)
    markers = [e for e in tracer.events
               if e["ph"] == "i" and e["cat"] == "race"]
    assert len(markers) == 2 * len(report.races)
    race = report.races[0]
    mine = [e for e in markers if e["args"]["race"] == 1]
    assert {e["tid"] for e in mine} == {race.first.rthread,
                                        race.second.rthread}
    assert all(e["name"] == "race:racy" for e in mine)


def test_window_export_scopes_spans(analyzed):
    recording, _report, _graph = analyzed
    tracer = export_trace(recording, start=40, until=120)
    spans = [e for e in tracer.events if e["ph"] == "X"]
    assert len(spans) == 80
    assert validate_trace(tracer.export()) == []
