"""Happens-before graph construction and kernel sync pairing."""

from repro.capo.events import (
    EV_SIGNAL,
    EV_SYSCALL,
    InputEvent,
)
from repro.forensics import (
    EDGE_FUTEX,
    EDGE_PROGRAM,
    EDGE_SIGNAL,
    EDGE_SPAWN,
    build_hb_graph,
    pair_kernel_sync,
)
from repro.kernel.syscalls import (
    SYS_FUTEX_WAIT,
    SYS_FUTEX_WAKE,
    SYS_KILL,
    SYS_SPAWN,
)
from repro.mrr.chunk import ChunkEntry, Reason


def chunk(rthread, ts, reason=Reason.RAW):
    return ChunkEntry(rthread, ts, 1, 0, 0, reason)


def syscall(rthread, seq, chunk_seq, sysno, value):
    return InputEvent(rthread=rthread, seq=seq, chunk_seq=chunk_seq,
                      kind=EV_SYSCALL, sysno=sysno, value=value)


def signal(rthread, seq, chunk_seq, signo):
    return InputEvent(rthread=rthread, seq=seq, chunk_seq=chunk_seq,
                      kind=EV_SIGNAL, value=signo)


def test_spawn_link_targets_child_first_chunk():
    links = pair_kernel_sync([syscall(1, 0, 1, SYS_SPAWN, 2)])
    assert len(links) == 1
    link = links[0]
    assert link.kind == EDGE_SPAWN
    assert link.src == (1, 0)   # the chunk the spawn syscall ended
    assert link.dst == (2, 0)   # the child's first chunk


def test_futex_wake_links_each_blocked_wait_fifo():
    events = [
        syscall(2, 0, 1, SYS_FUTEX_WAIT, 0),   # parked
        syscall(3, 1, 2, SYS_FUTEX_WAIT, 0),   # parked
        syscall(1, 2, 3, SYS_FUTEX_WAKE, 2),   # wakes both
    ]
    links = pair_kernel_sync(events)
    assert [link.kind for link in links] == [EDGE_FUTEX, EDGE_FUTEX]
    # Wake chunk -> each waiter's *next* chunk, FIFO in park order.
    assert links[0].src == (1, 2) and links[0].dst == (2, 1)
    assert links[1].src == (1, 2) and links[1].dst == (3, 2)


def test_futex_eagain_wait_creates_no_link():
    events = [
        syscall(2, 0, 1, SYS_FUTEX_WAIT, 1),   # EAGAIN: never blocked
        syscall(1, 1, 1, SYS_FUTEX_WAKE, 1),
    ]
    assert pair_kernel_sync(events) == []


def test_futex_words_separate_queues_with_args():
    events = [
        syscall(2, 0, 1, SYS_FUTEX_WAIT, 0),
        syscall(1, 1, 1, SYS_FUTEX_WAKE, 1),
    ]
    args = {0: (0x100, 0, 0, 0), 1: (0x200, 1, 0, 0)}  # different words
    assert pair_kernel_sync(events, args) == []
    args[1] = (0x100, 1, 0, 0)  # same word
    links = pair_kernel_sync(events, args)
    assert len(links) == 1 and links[0].kind == EDGE_FUTEX


def test_signal_link_pairs_kill_with_delivery():
    events = [
        syscall(1, 0, 1, SYS_KILL, 0),
        signal(2, 1, 3, 10),
    ]
    links = pair_kernel_sync(events, {0: (2, 10, 0, 0)})
    assert len(links) == 1
    link = links[0]
    assert link.kind == EDGE_SIGNAL
    assert link.src == (1, 0)
    assert link.dst == (2, 3)


def test_signal_to_other_target_does_not_pair_precisely():
    events = [syscall(1, 0, 1, SYS_KILL, 0), signal(3, 1, 2, 10)]
    assert pair_kernel_sync(events, {0: (2, 10, 0, 0)}) == []


def test_graph_program_edges_chain_each_thread():
    chunks = [chunk(1, 1), chunk(2, 2), chunk(1, 3, Reason.EXIT),
              chunk(2, 4, Reason.EXIT)]
    graph = build_hb_graph(chunks)
    program = [(e.src, e.dst) for e in graph.program_edges()]
    assert program == [(0, 2), (1, 3)]
    assert graph.edge_counts() == {EDGE_PROGRAM: 2}


def test_graph_orders_through_spawn_edge():
    # t1 runs two chunks, spawns t2 at its first boundary.
    chunks = [chunk(1, 1, Reason.SYSCALL), chunk(2, 2),
              chunk(1, 3, Reason.EXIT), chunk(2, 4, Reason.EXIT)]
    events = [syscall(1, 0, 1, SYS_SPAWN, 2)]
    graph = build_hb_graph(chunks, events)
    assert graph.ordered(0, 1)          # spawn: parent chunk -> child
    assert graph.ordered(0, 3)          # ... and transitively onward
    assert not graph.ordered(1, 2)      # child does not order the parent
    assert graph.concurrent(1, 2)
    assert not graph.anomalies


def test_graph_same_thread_always_ordered():
    chunks = [chunk(1, 1), chunk(1, 2), chunk(1, 3, Reason.EXIT)]
    graph = build_hb_graph(chunks)
    assert graph.ordered(0, 2)
    assert not graph.ordered(2, 0)
    assert not graph.ordered(1, 1)


def test_out_of_log_link_is_an_anomaly_not_a_crash():
    chunks = [chunk(1, 1, Reason.SYSCALL), chunk(1, 2, Reason.EXIT)]
    events = [syscall(1, 0, 1, SYS_SPAWN, 9)]  # thread 9 has no chunks
    graph = build_hb_graph(chunks, events)
    assert graph.anomalies
    assert not graph.sync_edges


def test_as_dict_shape():
    chunks = [chunk(1, 1), chunk(1, 2, Reason.EXIT)]
    payload = build_hb_graph(chunks).as_dict()
    assert payload["nodes"] == 2
    assert payload["edges"] == {EDGE_PROGRAM: 1}
    assert payload["sync_edges"] == []
    assert payload["anomalies"] == []
