"""The bench-all runner: schema stability, determinism gating, CLI exit."""

import json

import pytest

from repro.perf import bench


def _run(tmp_path, extra=()):
    out = tmp_path / "bench.json"
    argv = ["--quick", "--workers", "1", "--repeats", "1",
            "--scale", "1", "--out", str(out), *extra]
    return bench.main(argv), out


def test_history_schema_stable_and_digests_reproducible(tmp_path, capsys):
    code, out = _run(tmp_path, extra=["--label", "first"])
    assert code == 0
    code, _ = _run(tmp_path, extra=["--label", "second"])
    assert code == 0
    history = json.loads(out.read_text())
    assert history["schema"] == bench.SCHEMA
    assert [e["label"] for e in history["entries"]] == ["first", "second"]
    first, second = history["entries"]
    assert len(first["results"]) == len(bench.QUICK_WORKLOADS)
    for old, new in zip(first["results"], second["results"]):
        assert old["bench"] == new["bench"]
        # identical seeds => identical digests, units, cycles and chunks
        for key in ("digest", "units", "cycles", "chunks", "scale", "seed",
                    "replay_digest", "replay_checkpoints"):
            assert old[key] == new[key]
        assert set(new) == {"bench", "workload", "scale", "seed", "units",
                            "cycles", "chunks", "digest", "wall_s",
                            "rate_units_per_s", "replay_wall_s",
                            "replay_rate_units_per_s", "replay_digest",
                            "replay_checkpoints", "replay_jobs",
                            "replay_parallel_wall_s", "replay_speedup",
                            "replay_speedup_bound", "overhead"}
        assert new["replay_checkpoints"] > 0
        overhead = new["overhead"]
        # the trajectory: native cycles, three overheads, and the log
        # bandwidth series — v2 must never lose to v1 on these workloads
        assert overhead["native_cycles"] > 0
        assert overhead["full_overhead_pct"] >= overhead["hw_overhead_pct"]
        assert overhead["batched_overhead_pct"] <= \
            overhead["full_overhead_pct"]
        assert overhead["total_bytes_v2"] <= overhead["total_bytes_v1"]
        assert old["overhead"] == new["overhead"]
    # table printed, one line per bench plus the history footer
    lines = capsys.readouterr().out.strip().splitlines()
    assert any("history:" in line for line in lines)
    # the many-core scaling series rides on the entry (quick: 4 and 16
    # cores), bit-identical across fabrics and across runs
    for old, new in zip(first["scaling"], second["scaling"]):
        assert new["workload"] == bench.SCALING_WORKLOAD
        assert new["cores"] in (4, 16)
        assert old["digest"] == new["digest"]
        for coherence in ("snoop", "directory"):
            assert new[coherence]["notifies_sent"] > 0
            assert (new[coherence]["broadcast_snoops"]
                    == new["snoop"]["broadcast_snoops"])
        assert new["snoop"]["notifies_saved"] == 0
        assert new["directory"]["notifies_saved"] > 0
        assert new["saved_ratio"] > 0
    assert [row["cores"] for row in second["scaling"]] == [4, 16]
    assert any("scaling" in line for line in lines)


def test_no_scaling_flag_skips_the_series(tmp_path):
    code, out = _run(tmp_path, extra=["--no-scaling"])
    assert code == 0
    history = json.loads(out.read_text())
    assert history["entries"][-1]["scaling"] == []


def test_compare_scaling_gates_digests_and_warns_on_rate():
    def row(cores, digest, rate):
        return {"workload": "pingpong", "cores": cores, "scale": 1,
                "seed": 2, "digest": digest,
                "snoop": {"rate_units_per_s": rate},
                "directory": {"rate_units_per_s": rate}}

    previous = {"scaling": [row(4, "aaaa", 100_000.0),
                            row(16, "bbbb", 100_000.0)]}
    rows = [row(4, "XXXX", 100_000.0),
            row(16, "bbbb", 100_000.0 * bench.SLOWDOWN_WARN_RATIO / 2)]
    blocking, warnings = bench.compare_scaling(previous, rows)
    assert len(blocking) == 1 and "pingpong@4" in blocking[0]
    assert len(warnings) == 2  # both fabrics slowed at 16 cores
    # unseen (workload, cores) pairs are ignored, same as compare()
    assert bench.compare_scaling(previous, [row(64, "cccc", 1.0)]) == ([], [])


def test_digest_mismatch_blocks_with_exit_1(tmp_path, capsys):
    code, out = _run(tmp_path)
    assert code == 0
    history = json.loads(out.read_text())
    history["entries"][-1]["results"][0]["digest"] = "0" * 64
    out.write_text(json.dumps(history))
    code, _ = _run(tmp_path)
    assert code == 1
    assert "BLOCKING" in capsys.readouterr().err


def test_compare_flags_digest_changes_and_slow_rates():
    previous = {"results": [
        {"bench": "micro.counter", "scale": 1, "seed": 2,
         "digest": "aaaa", "rate_units_per_s": 100_000.0},
        {"bench": "micro.pingpong", "scale": 1, "seed": 2,
         "digest": "bbbb", "rate_units_per_s": 100_000.0},
    ]}
    results = [
        {"bench": "micro.counter", "scale": 1, "seed": 2,
         "digest": "XXXX", "rate_units_per_s": 100_000.0},
        {"bench": "micro.pingpong", "scale": 1, "seed": 2,
         "digest": "bbbb",
         "rate_units_per_s": 100_000.0 * bench.SLOWDOWN_WARN_RATIO / 2},
    ]
    blocking, warnings = bench.compare(previous, results)
    assert len(blocking) == 1 and "micro.counter" in blocking[0]
    assert len(warnings) == 1 and "micro.pingpong" in warnings[0]


def test_compare_ignores_different_scale_or_seed():
    previous = {"results": [{"bench": "micro.counter", "scale": 1, "seed": 2,
                             "digest": "aaaa", "rate_units_per_s": 1.0}]}
    results = [{"bench": "micro.counter", "scale": 2, "seed": 2,
                "digest": "zzzz", "rate_units_per_s": 1.0}]
    assert bench.compare(previous, results) == ([], [])


def test_load_history_rejects_unknown_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "other/v9", "entries": []}))
    with pytest.raises(ValueError):
        bench.load_history(path)


def test_cli_integration(tmp_path):
    """``python -m repro bench-all`` routes through the same runner."""
    from repro.cli import main as cli_main

    out = tmp_path / "cli.json"
    code = cli_main(["bench-all", "--quick", "--workers", "1",
                     "--repeats", "1", "--scale", "1", "--out", str(out)])
    assert code == 0
    assert json.loads(out.read_text())["schema"] == bench.SCHEMA
